"""Columnar engine: bit-exactness against the scalar oracle, plus plumbing.

The struct-of-arrays engine (:mod:`repro.engine.batch`) promises results
**bit-identical** to the scalar staged pipeline for any candidate list —
feasible, memory-infeasible, structurally invalid, and pruned alike — with
the scalar path kept as the oracle.  This suite checks that promise on the
golden equivalence grid and on Hypothesis-generated random candidates, then
covers the plumbing around the core: the pure-columnar search path, the
exact-order columnar enumerator, the NumPy version floor, the scalar
fallback counter, cache-reset semantics, service dispatch routing, and the
cached ``System`` hash the hot comm caches key on.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import calculate
from repro.engine import (
    PrunedResult,
    clear_caches,
    comm_cache_stats,
    evaluate_many,
    iter_evaluate,
)
from repro.engine import api as engine_api
from repro.engine import batch as engine_batch
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system, ddr5_offload
from repro.llm import GPT3_175B, TINY_TEST
from repro.obs import (
    M_COLUMNAR_BATCHES,
    M_COLUMNAR_CANDIDATES,
    M_COLUMNAR_FALLBACK,
    MetricsRegistry,
    PruneStats,
    Tracer,
)
from repro.search import SearchOptions, candidate_strategies, search
from repro.search import columns as search_columns

from tests.test_engine_equivalence import GRID, OFF64, SYS64

CASES = [
    pytest.param(llm, system, id=f"{llm.name}-{system.name}-{i}")
    for i, (llm, system) in enumerate(
        [(GPT3_175B, SYS64), (GPT3_175B, OFF64), (TINY_TEST, SYS64)]
    )
]

# PruneStats fields whose values legitimately differ between the scalar and
# columnar paths: wall-clock, the columnar-path-only counters, and comm-cache
# *hits* — the columnar path deduplicates per-bucket kernel calls to one call
# per distinct argument tuple, so it performs fewer redundant cache lookups.
# Misses must still match exactly: both paths compute the same set of
# distinct kernel shapes (asserted separately below).
_PATH_DEPENDENT = {
    "stage_seconds", "columnar_batches", "columnar_candidates",
    "columnar_fallback", "comm_cache_hits",
}


def _assert_comm_cache_consistent(s_stats: PruneStats, c_stats: PruneStats):
    # Same distinct kernel computations against a cleared cache...
    assert s_stats.comm_cache_misses == c_stats.comm_cache_misses
    # ...but the columnar path skips the scalar path's redundant lookups.
    assert c_stats.comm_cache_hits <= s_stats.comm_cache_hits


def _fields(result) -> dict:
    return dataclasses.asdict(result)


def _stats_fields(stats: PruneStats) -> dict:
    return {
        f.name: getattr(stats, f.name)
        for f in dataclasses.fields(stats)
        if f.name not in _PATH_DEPENDENT
    }


# -- bit-exactness on the golden grid ---------------------------------------


@pytest.mark.parametrize("llm, system", CASES)
@pytest.mark.parametrize("prune", [False, True])
def test_columnar_bit_identical_on_grid(llm, system, prune):
    clear_caches()
    scalar = evaluate_many(llm, system, GRID, prune=prune, columnar=False)
    clear_caches()
    columnar = evaluate_many(llm, system, GRID, prune=prune, columnar=True)
    assert len(scalar) == len(columnar) == len(GRID)
    for strat, s, c in zip(GRID, scalar, columnar):
        assert _fields(s) == _fields(c), strat.short_name()


@pytest.mark.parametrize("llm, system", CASES)
def test_columnar_stream_order_and_threshold(llm, system):
    """iter_evaluate yields input order either way, pruned results equal."""
    # ``prune_above`` is a batch-time ceiling: candidates whose roofline
    # lower bound is >= it are skipped.  An (effectively) zero ceiling makes
    # both paths prune every feasible candidate — and they must produce
    # bit-identical PrunedResult placeholders while doing it.
    threshold = 1e-12
    clear_caches()
    scalar = list(
        iter_evaluate(llm, system, GRID, prune_above=threshold, columnar=False)
    )
    clear_caches()
    columnar = list(
        iter_evaluate(llm, system, GRID, prune_above=threshold, columnar=True)
    )
    # The pruned iterator streams in bucket-grouped order, not input order —
    # the columnar path must reproduce that stream exactly, index for index.
    assert [i for i, _ in scalar] == [i for i, _ in columnar]
    assert sorted(i for i, _ in scalar) == list(range(len(GRID)))
    pruned = 0
    for (si, s), (ci, c) in zip(scalar, columnar):
        assert si == ci
        assert type(s) is type(c)
        assert _fields(s) == _fields(c)
        pruned += isinstance(c, PrunedResult)
    assert pruned  # the threshold must have bitten somewhere


@pytest.mark.parametrize("llm, system", CASES)
def test_columnar_stats_counters_match_scalar(llm, system):
    clear_caches()
    s_res, s_stats = evaluate_many(
        llm, system, GRID, prune=True, stats=True, columnar=False
    )
    clear_caches()
    c_res, c_stats = evaluate_many(
        llm, system, GRID, prune=True, stats=True, columnar=True
    )
    for s, c in zip(s_res, c_res):
        assert _fields(s) == _fields(c)
    # Same candidates, groups, buckets, rejections, and — because the comm
    # kernels compute the same distinct scalar keys against a cleared cache —
    # the same comm-cache misses.
    assert _stats_fields(s_stats) == _stats_fields(c_stats)
    _assert_comm_cache_consistent(s_stats, c_stats)
    assert c_stats.columnar_batches == 1
    assert c_stats.columnar_candidates == len(GRID)
    assert c_stats.columnar_fallback == 0
    assert s_stats.columnar_batches == 0


# -- property test: random candidates ---------------------------------------

_random_strategy = st.builds(
    ExecutionStrategy,
    tensor_par=st.sampled_from([1, 2, 4, 8]),
    pipeline_par=st.sampled_from([1, 2, 4, 8]),
    data_par=st.sampled_from([1, 2, 4, 8, 16]),
    batch=st.sampled_from([32, 64, 96]),
    microbatch=st.sampled_from([1, 2, 3, 4]),
    pp_interleaving=st.sampled_from([1, 2]),
    seq_par=st.booleans(),
    tp_redo_sp=st.booleans(),
    pp_rs_ag=st.booleans(),
    tp_overlap=st.sampled_from(["none", "pipe", "ring"]),
    dp_overlap=st.booleans(),
    optimizer_sharding=st.booleans(),
    recompute=st.sampled_from(["none", "attn_only", "full"]),
    fused_activations=st.booleans(),
    weight_offload=st.booleans(),
    activation_offload=st.booleans(),
    optimizer_offload=st.booleans(),
)


@given(
    strategies=st.lists(_random_strategy, min_size=1, max_size=40),
    use_offload=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_columnar_property_bit_identical(strategies, use_offload):
    """Random (valid or not) candidates: columnar == scalar, field for field."""
    system = OFF64 if use_offload else SYS64
    clear_caches()
    scalar, s_stats = evaluate_many(
        TINY_TEST, system, strategies, prune=True, stats=True, columnar=False
    )
    clear_caches()
    columnar, c_stats = evaluate_many(
        TINY_TEST, system, strategies, prune=True, stats=True, columnar=True
    )
    assert len(scalar) == len(columnar) == len(strategies)
    for strat, s, c in zip(strategies, scalar, columnar):
        assert _fields(s) == _fields(c), strat.short_name()
        assert s.feasible == c.feasible
        assert s.infeasibility == c.infeasibility
    assert _stats_fields(s_stats) == _stats_fields(c_stats)
    _assert_comm_cache_consistent(s_stats, c_stats)
    assert c_stats.columnar_candidates == len(strategies)


# -- columnar enumerator ----------------------------------------------------


@pytest.mark.parametrize(
    "llm, batch, opts",
    [
        (TINY_TEST, 64, SearchOptions()),
        (TINY_TEST, 96, SearchOptions(offload_modes=(
            (False, False, False), (True, True, True)))),
        (GPT3_175B, 3072, SearchOptions(max_tensor_par=8)),
    ],
    ids=["tiny", "tiny-offload", "gpt3-capped"],
)
def test_candidate_columns_matches_candidate_strategies(llm, batch, opts):
    """The vectorized enumerator reproduces candidate_strategies exactly."""
    system = a100_system(64)
    expected = list(candidate_strategies(llm, system, batch, opts))
    cols = search_columns.candidate_columns(llm, system, batch, opts)
    assert cols is not None
    want = engine_batch.columns_from_strategies(expected)
    assert set(cols) == set(want)
    for name in want:
        assert np.array_equal(cols[name], want[name]), name
    # strategy_at round-trips every row back to the original dataclass.
    eb = engine_batch.EvalBatch.from_columns(llm, system, cols)
    for i, strat in enumerate(expected):
        assert eb.strategy_at(i) == strat


def test_candidate_columns_unknown_mode_falls_back():
    opts = SearchOptions(recompute=("none", "attn_only"))
    object.__setattr__(opts, "recompute", ("none", "not-a-mode"))
    cols = search_columns.candidate_columns(TINY_TEST, SYS64, 64, opts)
    assert cols is None  # caller falls back to scalar enumeration


# -- pure-columnar search path ----------------------------------------------


def _search_pair(**kwargs):
    clear_caches()
    scalar = search(
        TINY_TEST, SYS64, 64, top_k=5, workers=0, columnar=False, **kwargs
    )
    clear_caches()
    columnar = search(
        TINY_TEST, SYS64, 64, top_k=5, workers=0, columnar=True, **kwargs
    )
    return scalar, columnar


@pytest.mark.parametrize("keep_rates", [False, True])
def test_search_columnar_bit_identical(keep_rates):
    scalar, columnar = _search_pair(keep_rates=keep_rates)
    assert scalar.num_evaluated == columnar.num_evaluated
    assert scalar.num_feasible == columnar.num_feasible
    assert len(scalar.top) == len(columnar.top)
    for (s1, r1), (s2, r2) in zip(scalar.top, columnar.top):
        assert s1 == s2
        assert _fields(r1) == _fields(r2)
    if keep_rates:
        assert np.array_equal(scalar.sample_rates, columnar.sample_rates)


def test_search_columnar_ignores_bound_prune_but_matches():
    """bound_prune is a no-op on the pure path — the answer still matches."""
    scalar, columnar = _search_pair(bound_prune=True)
    for (s1, r1), (s2, r2) in zip(scalar.top, columnar.top):
        assert s1 == s2
        assert _fields(r1) == _fields(r2)


def test_search_columnar_stats_and_trace():
    tracer = Tracer()
    clear_caches()
    res = search(
        TINY_TEST, SYS64, 64, top_k=3, workers=0, columnar=True,
        collect_stats=True, tracer=tracer,
    )
    stats = res.stats
    assert stats is not None
    assert stats.engine.columnar_batches == 1
    assert stats.engine.columnar_candidates == res.num_evaluated
    assert stats.num_evaluated == res.num_evaluated
    assert stats.workers == 1
    names = {e["name"] for e in tracer.events()}
    assert "enumerate" in names
    assert "comm" in names and "assemble" in names


def test_search_with_constraint_stays_scalar(monkeypatch):
    """A constraint forces the scalar path — the enumerator must not run."""
    def boom(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("columnar enumerator used despite constraint")

    monkeypatch.setattr(search_columns, "candidate_columns", boom)
    res = search(
        TINY_TEST, SYS64, 64, top_k=3, workers=0, columnar=True,
        constraint=lambda r: r.mfu > 0,
    )
    assert res.top


def test_search_chunked_workers_matches_serial():
    clear_caches()
    serial = search(TINY_TEST, SYS64, 64, top_k=5, workers=0, columnar=True)
    clear_caches()
    chunked = search(TINY_TEST, SYS64, 64, top_k=5, workers=2, columnar=True)
    assert serial.num_feasible == chunked.num_feasible
    for (s1, r1), (s2, r2) in zip(serial.top, chunked.top):
        assert s1 == s2
        assert _fields(r1) == _fields(r2)


# -- NumPy version floor (import gate) --------------------------------------


def test_numpy_floor_rejects_old_versions():
    with pytest.raises(ImportError) as exc:
        engine_batch.check_numpy_version("1.23.5")
    msg = str(exc.value)
    assert "1.24" in msg
    assert "columnar=False" in msg or "--no-columnar" in msg


@pytest.mark.parametrize("version", ["1.24.0", "1.26.4", "2.1.0", "2.0.0rc1"])
def test_numpy_floor_accepts_supported_versions(version):
    engine_batch.check_numpy_version(version)


def test_numpy_floor_checks_installed_version():
    engine_batch.check_numpy_version()  # the environment itself must pass


# -- scalar fallback counter ------------------------------------------------


def test_columnar_fallback_counts_and_still_answers(monkeypatch):
    def unavailable():
        raise ImportError("numpy too old (test)")

    monkeypatch.setattr(engine_api, "_load_batch", unavailable)
    clear_caches()
    results, stats = evaluate_many(
        TINY_TEST, SYS64, GRID, prune=True, stats=True, columnar=True
    )
    clear_caches()
    oracle = [calculate(TINY_TEST, SYS64, s) for s in GRID]
    for s, c in zip(oracle, results):
        assert _fields(s) == _fields(c)
    assert stats.columnar_fallback == 1
    assert stats.columnar_batches == 0


def test_columnar_auto_routing_respects_size_floor():
    small = GRID[: engine_api._COLUMNAR_MIN_BATCH - 1]
    mx = MetricsRegistry()
    evaluate_many(TINY_TEST, SYS64, small, prune=True, metrics=mx)
    assert mx.value(M_COLUMNAR_BATCHES) == 0  # under the floor: scalar
    mx2 = MetricsRegistry()
    evaluate_many(TINY_TEST, SYS64, GRID, prune=True, metrics=mx2)
    assert mx2.value(M_COLUMNAR_BATCHES) == 1  # over the floor: columnar
    assert mx2.value(M_COLUMNAR_CANDIDATES) == len(GRID)


# -- cache reset (clear_caches contract) ------------------------------------


def test_clear_caches_resets_comm_cache_counters():
    clear_caches()
    assert comm_cache_stats() == (0, 0)
    evaluate_many(TINY_TEST, SYS64, GRID, prune=True, columnar=True)
    hits, misses = comm_cache_stats()
    assert misses > 0  # a cleared cache must miss before it hits
    assert hits + misses > 0
    clear_caches()
    assert comm_cache_stats() == (0, 0)


# -- service dispatch routing -----------------------------------------------


def test_microbatcher_forwards_columnar_to_default_engine_only():
    from repro.service.dispatch import MicroBatcher

    seen = []

    def fake_engine(llm, system, strategies, *, metrics=None, **kwargs):
        seen.append(kwargs)
        return [calculate(llm, system, s) for s in strategies]

    mb = MicroBatcher(window=0, engine=fake_engine, columnar=True).start()
    try:
        fut = mb.submit(TINY_TEST, SYS64, GRID[0], group="g")
        assert fut.result(timeout=10).feasible == calculate(
            TINY_TEST, SYS64, GRID[0]
        ).feasible
    finally:
        mb.stop()
    assert seen and all("columnar" not in kw for kw in seen)

    # The default engine *does* receive the knob: with columnar=False the
    # columnar counters stay 0 even for a batch over the size floor.
    mb2 = MicroBatcher(window=0.05, max_batch=len(GRID), columnar=False).start()
    try:
        futs = [mb2.submit(TINY_TEST, SYS64, s, group="g") for s in GRID]
        for f in futs:
            f.result(timeout=30)
    finally:
        mb2.stop()
    assert mb2.metrics.value(M_COLUMNAR_BATCHES) == 0
    assert mb2.metrics.value(M_COLUMNAR_FALLBACK) == 0


# -- stats plumbing and System hash -----------------------------------------


def test_prunestats_columnar_counters_merge_and_print():
    reg = MetricsRegistry()
    reg.inc(M_COLUMNAR_BATCHES, 2)
    reg.inc(M_COLUMNAR_CANDIDATES, 100)
    reg.inc(M_COLUMNAR_FALLBACK, 1)
    stats = PruneStats.from_metrics(reg)
    assert stats.columnar_batches == 2
    assert stats.columnar_candidates == 100
    assert stats.columnar_fallback == 1
    merged = stats.merged(stats)
    assert merged.columnar_batches == 4
    assert merged.columnar_candidates == 200
    assert "columnar batches" in merged.summary()


def test_system_hash_is_cached_and_consistent():
    a = a100_system(64)
    b = a100_system(64)
    off = a100_system(64, offload=ddr5_offload(512))
    assert a == b and hash(a) == hash(b)
    assert hash(a) == hash(a)  # stable across calls (cached)
    assert a.__dict__.get("_hash") == hash(a)
    assert off != a  # different systems may hash apart; equality must differ
