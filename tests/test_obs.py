"""The observability layer: tracer, metrics, progress, and sweep stats.

Covers the properties the instrumentation must guarantee:

* span nesting and ordering survive the round trip to Chrome trace JSON;
* a disabled tracer allocates nothing on the hot path (one shared no-op
  context manager, zero recorded events);
* metrics merging is associative and commutative, so aggregation across
  ``ProcessPoolExecutor`` worker chunks is independent of chunk order and
  worker count;
* the emitted trace matches the Chrome ``trace_event`` schema (golden key
  set per phase);
* ``evaluate_many(stats=True)`` returns pruning counters consistent with
  the results, and an instrumented ``search`` aggregates correctly with
  ``workers > 1``.
"""

import json

import pytest

from repro.engine import evaluate_many
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import GPT3_175B
from repro.obs import (
    NULL_SPAN,
    MetricsRegistry,
    ProgressReporter,
    PruneStats,
    SweepStats,
    Tracer,
    validate_trace,
    validate_trace_file,
)
from repro.obs.stats import STAGE_NAMES
from repro.search import SearchOptions, search


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


def test_span_nesting_and_ordering():
    tracer = Tracer()
    with tracer.span("outer", cat="test"):
        with tracer.span("first", cat="test"):
            pass
        with tracer.span("second", cat="test"):
            pass
    events = tracer.events()
    by_name = {e["name"]: e for e in events}
    assert set(by_name) == {"outer", "first", "second"}
    outer, first, second = by_name["outer"], by_name["first"], by_name["second"]
    # Children close before the parent, so they are recorded first.
    assert [e["name"] for e in events] == ["first", "second", "outer"]
    # Timestamp containment is what trace viewers use for nesting.
    assert outer["ts"] <= first["ts"]
    assert first["ts"] + first["dur"] <= second["ts"] + second["dur"]
    assert second["ts"] + second["dur"] <= outer["ts"] + outer["dur"]


def test_span_args_recorded():
    tracer = Tracer()
    with tracer.span("work", cat="test", items=3):
        pass
    (event,) = tracer.events()
    assert event["args"] == {"items": 3}
    assert event["cat"] == "test"


def test_disabled_tracer_is_allocation_free():
    tracer = Tracer(enabled=False)
    # The same shared no-op context manager every time: nothing allocated.
    spans = {id(tracer.span(f"s{i}")) for i in range(10)}
    assert spans == {id(NULL_SPAN)}
    with tracer.span("anything"):
        pass
    tracer.instant("mark")
    tracer.add_span("agg", "cat", 0.0, 1.0)
    assert tracer.events() == []


def test_to_chrome_rebases_and_labels_processes():
    tracer = Tracer()
    with tracer.span("a"):
        pass
    obj = tracer.to_chrome()
    xs = [e for e in obj["traceEvents"] if e["ph"] == "X"]
    ms = [e for e in obj["traceEvents"] if e["ph"] == "M"]
    assert min(e["ts"] for e in xs) == 0.0
    assert any(e["name"] == "process_name" for e in ms)


def test_trace_file_roundtrip(tmp_path):
    tracer = Tracer()
    with tracer.span("stage", cat="engine.stage"):
        pass
    path = tracer.write(tmp_path / "trace.json")
    assert validate_trace_file(path) == []
    loaded = json.loads(path.read_text())
    assert loaded["displayTimeUnit"] == "ms"


# ---------------------------------------------------------------------------
# Trace schema (golden key check)
# ---------------------------------------------------------------------------


def test_golden_trace_schema_keys():
    tracer = Tracer()
    with tracer.span("s", cat="c", detail=1):
        pass
    obj = tracer.to_chrome()
    (x,) = [e for e in obj["traceEvents"] if e["ph"] == "X"]
    # The golden key set every complete event must carry.
    assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(x)
    assert isinstance(x["ts"], float) and isinstance(x["dur"], float)
    assert validate_trace(obj) == []


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda e: e.pop("dur"), "missing key 'dur'"),
        (lambda e: e.update(ts="soon"), "key 'ts' has type"),
        (lambda e: e.update(ph="Q"), "unknown phase"),
        (lambda e: e.update(dur=-1.0), "negative duration"),
    ],
)
def test_validate_trace_rejects_malformed_events(mutate, fragment):
    tracer = Tracer()
    with tracer.span("s"):
        pass
    obj = tracer.to_chrome()
    event = next(e for e in obj["traceEvents"] if e["ph"] == "X")
    mutate(event)
    errors = validate_trace(obj)
    assert errors and fragment in errors[0]


def test_validate_trace_rejects_non_objects():
    assert validate_trace([]) != []
    assert validate_trace({"notTraceEvents": []}) != []
    assert validate_trace_file("/nonexistent/trace.json") != []


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


def _registry(counter_vals, observations) -> MetricsRegistry:
    reg = MetricsRegistry()
    for name, v in counter_vals.items():
        reg.inc(name, v)
    for name, xs in observations.items():
        for x in xs:
            reg.observe(name, x)
    return reg


def test_metrics_merge_associative_across_simulated_chunks():
    # Three "worker chunk" registries with overlapping and disjoint names.
    # Binary-exact observations so merge-order float drift cannot mask the
    # structural property under test.
    a = _registry({"c": 2, "only_a": 1}, {"h": [0.125, 0.25]})
    b = _registry({"c": 5}, {"h": [0.5], "only_b": [1.0]})
    c = _registry({"c": 1, "only_a": 3}, {"h": [0.0625, 4.0]})
    snaps = [r.snapshot() for r in (a, b, c)]

    left = MetricsRegistry()
    left.merge(snaps[0])
    left.merge(snaps[1])
    left.merge(snaps[2])

    inner = MetricsRegistry()
    inner.merge(snaps[1])
    inner.merge(snaps[2])
    right = MetricsRegistry()
    right.merge(snaps[0])
    right.merge(inner.snapshot())

    reversed_order = MetricsRegistry.from_snapshots(reversed(snaps))

    for merged in (right, reversed_order):
        assert merged.snapshot() == left.snapshot()
    h = left.histograms["h"]
    assert h.count == 5
    assert h.min == 0.0625 and h.max == 4.0
    assert h.total == 0.125 + 0.25 + 0.5 + 0.0625 + 4.0
    assert left.value("c") == 8
    assert left.value("only_a") == 4


def test_histogram_summary_stats():
    reg = MetricsRegistry()
    for x in (0.5, 1.5, 2.0, 4.0):
        reg.observe("t", x)
    h = reg.histograms["t"]
    assert h.count == 4
    assert h.mean == pytest.approx(2.0)
    assert sum(h.buckets.values()) == 4


# ---------------------------------------------------------------------------
# Progress
# ---------------------------------------------------------------------------


def test_progress_rates_and_eta():
    now = [0.0]
    reports = []
    p = ProgressReporter(
        total=100, callback=reports.append, min_interval=0.0, clock=lambda: now[0]
    )
    now[0] = 2.0
    p.update(40, feasible=10)
    assert p.rate == pytest.approx(20.0)
    assert p.eta == pytest.approx(3.0)
    assert p.feasible_fraction == pytest.approx(0.25)
    now[0] = 5.0
    p.update(60, feasible=5)
    p.finish()
    assert p.done == 100 and p.feasible == 15
    assert p.eta == pytest.approx(0.0)
    assert len(reports) == 3


def test_progress_throttles_callbacks():
    now = [0.0]
    reports = []
    p = ProgressReporter(
        total=1000, callback=reports.append, min_interval=1.0, clock=lambda: now[0]
    )
    for _ in range(10):
        now[0] += 0.05  # well under min_interval
        p.update(1)
    assert len(reports) <= 1  # at most the first tick reports


def test_progress_status_line_mentions_throughput():
    now = [0.0]
    p = ProgressReporter(total=10, callback=lambda _: None, clock=lambda: now[0])
    now[0] = 1.0
    p.update(5, feasible=2)
    line = p.status_line()
    assert "5/10" in line and "/s" in line and "feasible" in line


# ---------------------------------------------------------------------------
# Engine stats and instrumented search
# ---------------------------------------------------------------------------

SYS64 = a100_system(64)


def _grid():
    out = []
    for t, p in ((1, 8), (2, 4), (4, 2), (8, 1), (8, 8)):
        d = 64 // (t * p)
        for recompute in ("none", "full"):
            out.append(
                ExecutionStrategy(
                    tensor_par=t, pipeline_par=p, data_par=d,
                    batch=64, microbatch=1, recompute=recompute,
                )
            )
    # One structurally-invalid candidate (t*p*d != system size) so the
    # validate-rejection path is exercised alongside memory rejections.
    out.append(
        ExecutionStrategy(
            tensor_par=64, pipeline_par=2, data_par=1,
            batch=64, microbatch=1, recompute="full",
        )
    )
    return out


def test_evaluate_many_stats_consistent_with_results():
    grid = _grid()
    results, stats = evaluate_many(GPT3_175B, SYS64, grid, prune=True, stats=True)
    assert isinstance(stats, PruneStats)
    assert stats.candidates == len(grid)
    n_feasible = sum(r.feasible for r in results)
    assert stats.evaluated_full == n_feasible
    assert stats.rejected_validate == sum(
        not r.feasible and "exceeds capacity" not in r.infeasibility
        for r in results
    )
    assert stats.rejected_memory == sum(
        not r.feasible and "exceeds capacity" in r.infeasibility for r in results
    )
    assert stats.rejected_validate >= 1  # the invalid-product candidate
    assert stats.candidates == (
        stats.rejected_validate + stats.rejected_memory + stats.evaluated_full
    )
    assert 0 < stats.profile_groups <= stats.validated
    assert stats.memory_buckets + stats.bucket_hits == stats.validated
    # Stage wall time was observed for every stage that ran.
    assert stats.stage_seconds["validate"] > 0
    assert stats.stage_seconds["profile"] > 0


def test_evaluate_many_stats_feeds_caller_registry():
    grid = _grid()
    reg = MetricsRegistry()
    _, first = evaluate_many(GPT3_175B, SYS64, grid, stats=True, metrics=reg)
    _, second = evaluate_many(GPT3_175B, SYS64, grid, stats=True, metrics=reg)
    # Each PruneStats covers exactly its own call ...
    assert first.candidates == second.candidates == len(grid)
    # ... while the caller's registry accumulates both.
    total = PruneStats.from_metrics(reg)
    assert total.candidates == 2 * len(grid)


def test_search_collect_stats_serial_and_parallel_agree():
    opts = SearchOptions.megatron_baseline()
    serial = search(GPT3_175B, SYS64, 64, opts, workers=0, collect_stats=True)
    parallel = search(GPT3_175B, SYS64, 64, opts, workers=2, collect_stats=True)
    for res in (serial, parallel):
        assert res.stats is not None
        assert res.stats.engine.candidates == res.num_evaluated
        assert res.stats.num_feasible == res.num_feasible
        assert res.stats.elapsed > 0
        assert res.stats.candidates_per_sec > 0
    # Counter aggregation across workers matches the serial ground truth
    # (profile groups/buckets are per-chunk, so only totals must agree).
    assert parallel.stats.engine.candidates == serial.stats.engine.candidates
    assert parallel.stats.engine.evaluated_full == serial.stats.engine.evaluated_full
    assert (
        parallel.stats.engine.rejected_memory == serial.stats.engine.rejected_memory
    )
    assert parallel.num_feasible == serial.num_feasible
    assert parallel.best.sample_rate == serial.best.sample_rate
    summary = parallel.stats.summary()
    assert "candidates/s" in summary and "dedup" in summary


def test_search_trace_covers_stages_and_chunks(tmp_path):
    tracer = Tracer()
    search(
        GPT3_175B, SYS64, 64, SearchOptions.megatron_baseline(),
        workers=0, tracer=tracer,
    )
    path = tracer.write(tmp_path / "sweep.json")
    assert validate_trace_file(path) == []
    names = {e["name"] for e in tracer.events()}
    assert set(STAGE_NAMES) <= names  # all five pipeline stages
    assert "enumerate" in names
    assert any(n.startswith("chunk[") for n in names)


def test_search_uninstrumented_attaches_no_stats():
    res = search(GPT3_175B, SYS64, 64, SearchOptions.megatron_baseline(), workers=0)
    assert res.stats is None


def test_sweep_stats_merge():
    engine = PruneStats(candidates=10, rejected_memory=4, evaluated_full=6)
    a = SweepStats(engine=engine, elapsed=1.0, workers=2,
                   num_evaluated=10, num_feasible=6)
    b = SweepStats(engine=engine, elapsed=3.0, workers=1,
                   num_evaluated=10, num_feasible=2)
    merged = SweepStats.merge([a, b])
    assert merged.num_evaluated == 20
    assert merged.num_feasible == 8
    assert merged.elapsed == pytest.approx(4.0)
    assert merged.workers == 2
    assert merged.engine.candidates == 20
    assert SweepStats.merge([]).num_evaluated == 0


def test_registry_concurrent_increments_lose_nothing():
    # The service increments one registry from HTTP handler threads and the
    # dispatch thread; first-touch creation and += must both be locked.
    import threading

    reg = MetricsRegistry()
    n_threads, per_thread = 8, 2000

    def worker():
        for _ in range(per_thread):
            reg.inc("race.counter")
            reg.observe("race.histogram", 1.0)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert reg.value("race.counter") == n_threads * per_thread
    snap = reg.snapshot()
    assert snap["histograms"]["race.histogram"]["count"] == n_threads * per_thread


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------


def test_prometheus_names_are_prefixed_and_sanitized():
    from repro.obs import prometheus_name

    assert prometheus_name("service.requests") == "repro_service_requests"
    assert prometheus_name("engine-comm cache") == "repro_engine_comm_cache"
    assert prometheus_name("7start") == "repro__7start"
    # Idempotent: an already-prefixed name is not double-prefixed.
    assert prometheus_name("repro_service_requests") == "repro_service_requests"
    assert prometheus_name(prometheus_name("a.b")) == prometheus_name("a.b")


def test_prometheus_label_escaping():
    from repro.obs import escape_label_value

    assert escape_label_value('say "hi"') == 'say \\"hi\\"'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("line1\nline2") == "line1\\nline2"
    assert escape_label_value("plain") == "plain"


def test_prometheus_histogram_family_is_cumulative():
    from repro.obs import render_prometheus

    reg = MetricsRegistry()
    for x in (0.3, 0.6, 0.7, 1.5, 3.0):
        reg.observe("stage.seconds", x)
    reg.inc("hits", 2)
    text = render_prometheus(reg, gauges={"depth": 4.0})

    assert "# TYPE repro_hits counter" in text
    assert "repro_hits 2" in text
    assert "# TYPE repro_depth gauge" in text
    assert "# TYPE repro_stage_seconds histogram" in text
    assert "repro_stage_seconds_sum 6.1" in text
    assert "repro_stage_seconds_count 5" in text

    # Bucket series must be cumulative and ordered, ending at +Inf == count.
    buckets = []
    for line in text.splitlines():
        if line.startswith("repro_stage_seconds_bucket"):
            le = line.split('le="')[1].split('"')[0]
            buckets.append((le, int(line.rsplit(" ", 1)[1])))
    counts = [c for _, c in buckets]
    assert counts == sorted(counts)
    assert buckets[-1] == ("+Inf", 5)
    # 0.3 -> (0.25, 0.5]; 0.6, 0.7 -> (0.5, 1]; 1.5 -> (1, 2]; 3.0 -> (2, 4].
    assert ("0.5", 1) in buckets and ("1", 3) in buckets
    assert ("2", 4) in buckets and ("4", 5) in buckets


def test_histogram_quantiles_bounded_by_extremes():
    from repro.obs import Histogram

    h = Histogram()
    for x in (0.001, 0.002, 0.5, 1.5, 3.0):
        h.observe(x)
    assert h.quantile(0.0) == pytest.approx(0.001)
    assert h.quantile(1.0) == pytest.approx(3.0)
    assert 0.001 <= h.quantile(0.5) <= 3.0
    assert h.quantile(0.5) <= h.quantile(0.95) <= h.quantile(0.99)
    with pytest.raises(ValueError):
        h.quantile(1.5)
    assert Histogram().quantile(0.5) == 0.0


def test_histogram_merge_associative_hypothesis():
    hypothesis = pytest.importorskip("hypothesis")
    from hypothesis import given, settings
    from hypothesis import strategies as st

    from repro.obs import Histogram

    def build(values):
        h = Histogram()
        for v in values:
            h.observe(v)
        return h

    def merged(*hs):
        out = Histogram()
        for h in hs:
            out.merge(h)
        return out

    samples = st.lists(
        st.floats(min_value=1e-9, max_value=1e9, allow_nan=False),
        max_size=30,
    )

    @settings(max_examples=60, deadline=None)
    @given(samples, samples, samples)
    def check(a, b, c):
        ha, hb, hc = build(a), build(b), build(c)
        left = merged(merged(ha, hb), hc)
        right = merged(ha, merged(hb, hc))
        # Exactly associative in structure; the float running sum is
        # associative only up to rounding.
        assert left.count == right.count
        assert left.buckets == right.buckets
        assert left.min == right.min and left.max == right.max
        assert left.total == pytest.approx(right.total)
        # And merging matches observing everything in one histogram.
        direct = build(a + b + c)
        assert left.count == direct.count
        assert left.buckets == direct.buckets
        assert left.total == pytest.approx(direct.total)

    check()


# ---------------------------------------------------------------------------
# Progress hardening
# ---------------------------------------------------------------------------


def test_progress_eta_never_divides_by_zero():
    now = [0.0]
    p = ProgressReporter(total=10, callback=lambda _: None, clock=lambda: now[0])
    # No completions yet and no elapsed time: no estimate, no exception.
    assert p.eta is None
    assert p.rate == 0.0
    # Completions with a stalled clock: rate 0 -> still no estimate.
    p.update(5)
    assert p.rate == 0.0
    assert p.eta is None
    # Unknown total: no estimate either.
    q = ProgressReporter(callback=lambda _: None, clock=lambda: now[0])
    q.update(3)
    assert q.eta is None
    assert "ETA" not in q.status_line()


def test_progress_survives_backwards_clock_and_overshoot():
    now = [100.0]
    p = ProgressReporter(total=10, callback=lambda _: None, clock=lambda: now[0])
    now[0] = 90.0  # a (buggy) injected clock steps backwards
    p.update(4)
    assert p.elapsed == 0.0
    assert p.rate == 0.0
    assert p.eta is None
    now[0] = 110.0
    p.update(16)  # overshoot: done > total
    assert p.eta == pytest.approx(0.0)
    line = p.status_line()
    assert "ETA" in line and "-" not in line.split("ETA")[1]
