"""Fault supervision: retry/backoff math, injection, recovery, degradation."""

import time

import pytest

from repro.hardware import a100_system
from repro.llm import LLMConfig
from repro.search import (
    FaultInjected,
    FaultInjector,
    RetryPolicy,
    SearchOptions,
    run_supervised,
    search,
)
import repro.search.faults as faults_mod

LLM = LLMConfig(name="faults-llm", hidden=2048, attn_heads=16, seq_size=1024,
                num_blocks=16)
SYS = a100_system(16)


def small_options(**kw):
    base = dict(
        recompute=("full",),
        seq_par_modes=((False, False, False),),
        tp_overlap=("none",),
        dp_overlap=(False,),
        optimizer_sharding=(False,),
        fused_activations=(False,),
        max_microbatch=4,
    )
    base.update(kw)
    return SearchOptions(**base)


def _work(args):
    """Module-level (hence picklable) chunk function for pool tests."""
    index, injector, delay = args
    if injector is not None:
        injector.fire(index)
    if delay:
        time.sleep(delay)
    return index * 10


def _tasks(n, injector=None, delay=0.0):
    return {i: (i, injector, delay) for i in range(n)}


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

def test_retry_policy_delay_schedule():
    policy = RetryPolicy(max_retries=4, backoff_base=0.1, backoff_factor=2.0,
                         backoff_max=0.5)
    assert policy.delay(0) == pytest.approx(0.1)
    assert policy.delay(1) == pytest.approx(0.2)
    assert policy.delay(2) == pytest.approx(0.4)
    assert policy.delay(3) == pytest.approx(0.5)  # capped
    assert policy.delays() == [policy.delay(a) for a in range(4)]


def test_retry_policy_zero_base_never_sleeps():
    policy = RetryPolicy(max_retries=3, backoff_base=0.0)
    assert policy.delays() == [0.0, 0.0, 0.0]


@pytest.mark.parametrize("kw", [
    dict(max_retries=-1),
    dict(backoff_base=-0.1),
    dict(backoff_factor=0.5),
    dict(backoff_max=-1.0),
    dict(timeout=0.0),
    dict(timeout=-1.0),
])
def test_retry_policy_validation(kw):
    with pytest.raises(ValueError):
        RetryPolicy(**kw)


# ---------------------------------------------------------------------------
# FaultInjector
# ---------------------------------------------------------------------------

def test_injector_rejects_unknown_mode():
    with pytest.raises(ValueError):
        FaultInjector(0, mode="brownout")


def test_injector_only_fires_on_matching_chunk():
    inj = FaultInjector(2, mode="exception")
    inj.fire(0)
    inj.fire(1)
    with pytest.raises(FaultInjected):
        inj.fire(2)


def test_injector_recovers_after_fail_attempts():
    inj = FaultInjector(0, mode="exception", fail_attempts=2)
    with pytest.raises(FaultInjected):
        inj.fire(0)
    with pytest.raises(FaultInjected):
        inj.fire(0)
    inj.fire(0)  # third attempt succeeds


def test_injector_state_file_counts_across_instances(tmp_path):
    # Each pool attempt unpickles a fresh injector; the state file is what
    # makes "fail once, then recover" deterministic across processes.
    state = tmp_path / "attempts"
    first = FaultInjector(0, mode="exception", fail_attempts=1, state_path=state)
    with pytest.raises(FaultInjected):
        first.fire(0)
    second = FaultInjector(0, mode="exception", fail_attempts=1, state_path=state)
    second.fire(0)  # sees attempt #1 via the file: no failure
    assert state.stat().st_size == 2


# ---------------------------------------------------------------------------
# run_supervised: serial path
# ---------------------------------------------------------------------------

def test_serial_all_success():
    report = run_supervised(_work, _tasks(4), workers=0)
    assert report.results == {0: 0, 1: 10, 2: 20, 3: 30}
    assert report.retries == 0
    assert not report.skipped and not report.pending and not report.truncated


def test_serial_retry_then_recover():
    inj = FaultInjector(1, mode="exception", fail_attempts=1)
    report = run_supervised(
        _work, _tasks(3, inj), workers=0,
        policy=RetryPolicy(max_retries=2, backoff_base=0.0),
    )
    assert report.results == {0: 0, 1: 10, 2: 20}
    assert report.retries == 1
    assert not report.skipped


def test_serial_exhaustion_skips_and_continues():
    inj = FaultInjector(0, mode="exception", fail_attempts=10**9)
    report = run_supervised(
        _work, _tasks(3, inj), workers=0,
        policy=RetryPolicy(max_retries=1, backoff_base=0.0),
    )
    assert report.skipped == [0]
    assert report.results == {1: 10, 2: 20}
    assert report.retries == 1


def test_serial_on_result_sees_completion_order():
    seen = []
    run_supervised(_work, _tasks(3), workers=0,
                   on_result=lambda i, r: seen.append((i, r)))
    assert seen == [(0, 0), (1, 10), (2, 20)]


def test_serial_deadline_truncates_at_chunk_boundary(monkeypatch):
    # A fake clock makes the truncation point exact: each perf_counter()
    # call advances one second, and the deadline passes before chunk 2.
    ticks = iter(range(1, 100))
    monkeypatch.setattr(faults_mod, "perf_counter", lambda: float(next(ticks)))
    report = run_supervised(_work, _tasks(4), workers=0, deadline=2.5)
    assert report.truncated
    assert sorted(report.results) == [0, 1]
    assert report.pending == [2, 3]


def test_deadline_already_passed_runs_nothing():
    report = run_supervised(
        _work, _tasks(3), workers=0, deadline=faults_mod.perf_counter() - 1.0
    )
    assert report.truncated
    assert report.results == {}
    assert report.pending == [0, 1, 2]


# ---------------------------------------------------------------------------
# run_supervised: pool path
# ---------------------------------------------------------------------------

def test_pool_all_success():
    report = run_supervised(_work, _tasks(5), workers=2)
    assert report.results == {i: i * 10 for i in range(5)}
    assert not report.skipped and not report.truncated


def test_pool_exception_retry_then_recover(tmp_path):
    inj = FaultInjector(1, mode="exception", fail_attempts=1,
                        state_path=tmp_path / "state")
    report = run_supervised(
        _work, _tasks(4, inj), workers=2,
        policy=RetryPolicy(max_retries=2, backoff_base=0.0),
    )
    assert report.results == {0: 0, 1: 10, 2: 20, 3: 30}
    assert report.retries == 1


def test_pool_crash_recovery(tmp_path):
    # A worker dying via os._exit breaks the whole pool; supervision must
    # rebuild it and still complete every chunk.
    inj = FaultInjector(1, mode="crash", fail_attempts=1,
                        state_path=tmp_path / "state")
    report = run_supervised(
        _work, _tasks(4, inj), workers=2,
        policy=RetryPolicy(max_retries=3, backoff_base=0.0),
    )
    assert report.results == {0: 0, 1: 10, 2: 20, 3: 30}
    assert report.retries >= 1
    assert not report.skipped


def test_pool_hang_timeout_recovery(tmp_path):
    inj = FaultInjector(2, mode="hang", fail_attempts=1,
                        state_path=tmp_path / "state", hang_seconds=60.0)
    report = run_supervised(
        _work, _tasks(4, inj), workers=2,
        policy=RetryPolicy(max_retries=2, backoff_base=0.0, timeout=1.0),
    )
    assert report.results == {0: 0, 1: 10, 2: 20, 3: 30}
    assert report.retries >= 1


def test_pool_exhaustion_skips_with_serial_fallback():
    inj = FaultInjector(0, mode="exception", fail_attempts=10**9)
    report = run_supervised(
        _work, _tasks(3, inj), workers=2,
        policy=RetryPolicy(max_retries=1, backoff_base=0.0),
    )
    assert report.skipped == [0]
    assert report.results == {1: 10, 2: 20}


def test_pool_deadline_leaves_pending():
    report = run_supervised(
        _work, _tasks(6), workers=2,
        deadline=faults_mod.perf_counter() - 1.0,
    )
    assert report.truncated
    assert report.results == {}
    assert report.pending == list(range(6))


# ---------------------------------------------------------------------------
# search() integration: the ISSUE acceptance criteria
# ---------------------------------------------------------------------------

def test_search_survives_always_failing_chunk():
    # An injected chunk that fails every pool retry AND the serial fallback
    # must not abort the sweep: its candidate range lands in stats.skipped.
    inj = FaultInjector(0, mode="exception", fail_attempts=10**9)
    result = search(
        LLM, SYS, batch=32, options=small_options(), workers=0, top_k=5,
        retry_policy=RetryPolicy(max_retries=1, backoff_base=0.0),
        fault_injector=inj,
    )
    assert result.stats is not None
    assert len(result.stats.skipped) == 1
    lo, hi = result.stats.skipped[0]
    assert lo == 0 and hi > lo
    # The rest of the space was still evaluated.
    assert result.num_evaluated > 0
    assert result.best is not None


def test_search_retry_recovers_bit_identical():
    ref = search(LLM, SYS, batch=32, options=small_options(), workers=0,
                 top_k=5, retry_policy=RetryPolicy(max_retries=2))
    inj = FaultInjector(1, mode="exception", fail_attempts=1)
    got = search(
        LLM, SYS, batch=32, options=small_options(), workers=0, top_k=5,
        retry_policy=RetryPolicy(max_retries=2, backoff_base=0.0),
        fault_injector=inj,
    )
    assert got.stats is not None and got.stats.retries == 1
    assert got.num_evaluated == ref.num_evaluated
    assert got.num_feasible == ref.num_feasible
    assert [s.to_dict() for s, _ in got.top] == [s.to_dict() for s, _ in ref.top]
    assert [r.sample_rate for _, r in got.top] == [
        r.sample_rate for _, r in ref.top
    ]


def test_search_deadline_zero_truncates():
    result = search(LLM, SYS, batch=32, options=small_options(), workers=0,
                    top_k=5, deadline=0.0)
    assert result.truncated
    assert result.num_evaluated == 0
    assert result.stats is not None and result.stats.truncated
