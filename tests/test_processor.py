"""Processor and efficiency-curve tests (paper §2.2)."""

import pytest

from repro.hardware import A100, H100, EfficiencyCurve, Processor
from repro.units import TFLOPS


def test_curve_below_first_point_clamps():
    curve = EfficiencyCurve(points=((1e6, 0.1), (1e9, 0.9)))
    assert curve(10.0) == pytest.approx(0.1)


def test_curve_above_last_point_clamps():
    curve = EfficiencyCurve(points=((1e6, 0.1), (1e9, 0.9)))
    assert curve(1e15) == pytest.approx(0.9)


def test_curve_interpolates_log_linearly():
    curve = EfficiencyCurve(points=((1e6, 0.2), (1e8, 0.8)))
    # Geometric midpoint of 1e6..1e8 is 1e7 -> arithmetic midpoint efficiency.
    assert curve(1e7) == pytest.approx(0.5)


def test_curve_is_monotone_for_monotone_points():
    curve = EfficiencyCurve(points=((1e6, 0.05), (1e8, 0.5), (1e11, 0.9)))
    vals = [curve(x) for x in (1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12)]
    assert vals == sorted(vals)


def test_curve_requires_sorted_points():
    with pytest.raises(ValueError, match="sorted"):
        EfficiencyCurve(points=((1e9, 0.9), (1e6, 0.1)))


def test_curve_rejects_bad_efficiency():
    with pytest.raises(ValueError, match="efficiency"):
        EfficiencyCurve(points=((1e6, 1.5),))
    with pytest.raises(ValueError, match="efficiency"):
        EfficiencyCurve(points=((1e6, 0.0),))


def test_curve_rejects_empty():
    with pytest.raises(ValueError, match="at least one"):
        EfficiencyCurve(points=())


def test_flat_curve():
    flat = EfficiencyCurve.flat(0.7)
    assert flat(1.0) == flat(1e15) == pytest.approx(0.7)


def test_a100_h100_peaks():
    assert A100.matrix_flops == 312 * TFLOPS
    assert H100.matrix_flops == 989 * TFLOPS
    assert H100.matrix_flops > A100.matrix_flops


def test_compute_time_inverse_of_rate():
    proc = Processor(
        name="p",
        matrix_flops=100 * TFLOPS,
        vector_flops=10 * TFLOPS,
        matrix_efficiency=EfficiencyCurve.flat(0.5),
        vector_efficiency=EfficiencyCurve.flat(1.0),
    )
    assert proc.compute_time("matrix", 1e12) == pytest.approx(1e12 / (100e12 * 0.5))
    assert proc.compute_time("vector", 1e12) == pytest.approx(0.1)


def test_compute_time_zero_flops_is_zero():
    assert A100.compute_time("matrix", 0.0) == 0.0


def test_compute_time_rejects_negative():
    with pytest.raises(ValueError):
        A100.compute_time("matrix", -1.0)


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="engine"):
        A100.compute_time("quantum", 1e9)


def test_small_gemms_run_slower_than_proportionally():
    # A GEMM 1000x smaller takes much more than 1000x less time.
    big = A100.compute_time("matrix", 1e12)
    small = A100.compute_time("matrix", 1e9)
    assert small > big / 1000


def test_positive_peak_required():
    with pytest.raises(ValueError):
        Processor(name="bad", matrix_flops=0, vector_flops=1)
