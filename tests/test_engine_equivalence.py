"""Golden equivalence: staged engine vs. the stable ``calculate()`` wrapper.

The staged pipeline (validate -> profile -> memory plan -> comm exposure ->
time assembly) must be a pure refactoring of the analytical model: every
``PerformanceResult`` field — times, memory bytes, offload stats, MFU, and
infeasibility reasons — must be *bit-identical* whether a configuration is
evaluated one at a time through :func:`repro.core.calculate`, batched through
:func:`repro.engine.evaluate_many` (with or without pruning), or screened by
the :func:`repro.engine.check_feasible` fast path.

The grid below crosses two LLMs with >50 strategies each and spans feasible,
memory-infeasible, and structurally invalid configurations, with and without
an offload tier.
"""

import dataclasses
from itertools import product

import pytest

from repro.core import calculate
from repro.engine import check_feasible, evaluate, evaluate_many
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system, ddr5_offload
from repro.llm import GPT3_175B, TINY_TEST
from repro.obs import MetricsRegistry, Tracer

SYS64 = a100_system(64)  # 80 GiB HBM: large-batch no-recompute runs overflow
OFF64 = a100_system(64, offload=ddr5_offload(512))
SYS8 = a100_system(8)


def _strategy_grid() -> list[ExecutionStrategy]:
    """>50 strategies spanning feasible, infeasible, and invalid shapes."""
    out = []
    for t, p in product((1, 2, 4, 8), (1, 2, 4, 8)):
        d = 64 // (t * p)
        for mb, recompute in product((1, 2), ("none", "full")):
            out.append(
                ExecutionStrategy(
                    tensor_par=t, pipeline_par=p, data_par=d,
                    batch=64, microbatch=mb, recompute=recompute,
                    seq_par=t > 1, tp_redo_sp=t > 1,
                    optimizer_sharding=d > 1,
                )
            )
    # Structurally invalid: t*p*d != num_procs, batch not divisible.
    out.append(ExecutionStrategy(tensor_par=8, pipeline_par=8, data_par=2,
                                 batch=64, microbatch=1))
    out.append(ExecutionStrategy(tensor_par=8, pipeline_par=8, data_par=1,
                                 batch=63, microbatch=1))
    # Offload-flagged variants (feasible only on systems with a tier 2).
    for recompute in ("none", "attn_only", "full"):
        out.append(
            ExecutionStrategy(
                tensor_par=8, pipeline_par=8, data_par=1, batch=64,
                microbatch=1, recompute=recompute, optimizer_sharding=True,
                weight_offload=True, activation_offload=True,
                optimizer_offload=True,
            )
        )
    return out


GRID = _strategy_grid()
CASES = [
    pytest.param(llm, system, id=f"{llm.name}-{system.name}-{i}")
    for i, (llm, system) in enumerate(
        [(GPT3_175B, SYS64), (GPT3_175B, OFF64), (TINY_TEST, SYS64)]
    )
]


def _as_fields(result) -> dict:
    return dataclasses.asdict(result)


@pytest.mark.parametrize("llm, system", CASES)
def test_evaluate_many_bit_identical_to_calculate(llm, system):
    assert len(GRID) > 50
    singles = [calculate(llm, system, s) for s in GRID]
    batched = evaluate_many(llm, system, GRID, prune=True)
    unpruned = evaluate_many(llm, system, GRID, prune=False)
    assert len(batched) == len(unpruned) == len(GRID)
    for strat, one, many, full in zip(GRID, singles, batched, unpruned):
        label = strat.short_name()
        assert _as_fields(one) == _as_fields(many), label
        assert _as_fields(one) == _as_fields(full), label


@pytest.mark.parametrize("llm, system", CASES)
def test_infeasibility_reasons_identical(llm, system):
    singles = [calculate(llm, system, s) for s in GRID]
    batched = evaluate_many(llm, system, GRID, prune=True)
    assert any(not r.feasible for r in singles)  # grid must exercise failures
    for one, many in zip(singles, batched):
        assert one.feasible == many.feasible
        assert one.infeasibility == many.infeasibility


@pytest.mark.parametrize("llm, system", CASES)
def test_check_feasible_agrees_with_full_evaluation(llm, system):
    for strat in GRID:
        report = check_feasible(llm, system, strat)
        result = calculate(llm, system, strat)
        assert bool(report) == report.feasible == result.feasible
        if not report.feasible:
            assert report.reason == result.infeasibility
            assert report.stage in ("validate", "memory")
        else:
            assert report.stage == "ok"
            # The fast path reports the same memory plan the full pipeline uses.
            assert report.mem1 == result.mem1
            assert report.tier2_bytes == result.offload.used_bytes


def test_fast_path_covers_both_failure_stages():
    stages = set()
    for strat in GRID:
        report = check_feasible(GPT3_175B, SYS64, strat)
        if not report.feasible:
            stages.add(report.stage)
    assert stages == {"validate", "memory"}


@pytest.mark.parametrize("llm, system", CASES)
def test_instrumented_evaluation_bit_identical(llm, system):
    """Tracing and metrics must observe, never perturb.

    Every result field stays bit-identical when spans and counters are
    attached, for both the single-candidate path and the pruned batch path.
    """
    singles = [calculate(llm, system, s) for s in GRID]

    tracer = Tracer()
    metrics = MetricsRegistry()
    instrumented = [
        evaluate(llm, system, s, tracer=tracer, metrics=metrics) for s in GRID
    ]
    batched, stats = evaluate_many(llm, system, GRID, prune=True, stats=True)
    for strat, one, single_inst, batch_inst in zip(
        GRID, singles, instrumented, batched
    ):
        label = strat.short_name()
        assert _as_fields(one) == _as_fields(single_inst), label
        assert _as_fields(one) == _as_fields(batch_inst), label
    # The instrumentation did run: spans and counters were recorded.
    assert len(tracer.events()) > 0
    assert metrics.value("engine.candidates") == len(GRID)
    assert stats.candidates == len(GRID)


def test_memory_stage_failures_carry_the_memory_plan():
    # Even rejected candidates report where the bytes went, which is what
    # capacity planning (repro.analysis.capacity) relies on.
    strat = ExecutionStrategy(tensor_par=1, pipeline_par=1, data_par=8,
                              batch=64, microbatch=1, recompute="none")
    report = check_feasible(GPT3_175B, SYS8, strat)
    assert not report.feasible
    assert report.stage == "memory"
    assert report.mem1 is not None
    assert report.mem1.total > SYS8.mem1.capacity
