"""Strong/weak-scaling study tests."""

import pytest

from repro.analysis import ScalingModePoint, strong_scaling, weak_scaling
from repro.hardware import a100_system
from repro.llm import LLMConfig
from repro.search import SearchOptions

LLM = LLMConfig(name="sm-llm", hidden=2048, attn_heads=16, seq_size=1024,
                num_blocks=8)
OPTS = SearchOptions(
    recompute=("full",),
    seq_par_modes=((False, False, False),),
    tp_overlap=("none",),
    dp_overlap=(False,),
    optimizer_sharding=(True,),
    fused_activations=(False,),
    max_microbatch=4,
)
SIZES = [4, 8, 16]


def factory(n):
    return a100_system(n)


def test_strong_scaling_fixed_batch():
    points = strong_scaling(LLM, factory, SIZES, 32, OPTS)
    assert [p.batch for p in points] == [32, 32, 32]
    assert all(p.feasible for p in points)
    rates = [p.sample_rate for p in points]
    assert rates == sorted(rates)  # more GPUs, more throughput


def test_strong_scaling_efficiency_degrades():
    points = strong_scaling(LLM, factory, SIZES, 32, OPTS)
    base = points[0]
    effs = [p.efficiency(base) for p in points]
    assert effs[0] == pytest.approx(1.0)
    # Strong scaling cannot be superlinear in this model, and typically
    # degrades as the fixed batch is spread thinner.
    assert all(e <= 1.05 for e in effs)


def test_weak_scaling_grows_batch():
    points = weak_scaling(LLM, factory, SIZES, batch_per_proc=8, options=OPTS)
    assert [p.batch for p in points] == [32, 64, 128]
    assert all(p.feasible for p in points)


def test_weak_scaling_holds_efficiency_better():
    strong = strong_scaling(LLM, factory, SIZES, 32, OPTS)
    weak = weak_scaling(LLM, factory, SIZES, batch_per_proc=8, options=OPTS)
    eff_strong = strong[-1].efficiency(strong[0])
    eff_weak = weak[-1].efficiency(weak[0])
    assert eff_weak >= eff_strong - 0.05


def test_speedup_and_efficiency_math():
    a = ScalingModePoint(num_procs=4, batch=32, sample_rate=10.0,
                         batch_time=3.2, mfu=0.5, feasible=True)
    b = ScalingModePoint(num_procs=8, batch=32, sample_rate=18.0,
                         batch_time=1.8, mfu=0.45, feasible=True)
    assert b.speedup(a) == pytest.approx(1.8)
    assert b.efficiency(a) == pytest.approx(0.9)


def test_infeasible_points_report_zero():
    bad = ScalingModePoint(num_procs=8, batch=32, sample_rate=0.0,
                           batch_time=float("inf"), mfu=0.0, feasible=False)
    ok = ScalingModePoint(num_procs=4, batch=32, sample_rate=10.0,
                          batch_time=3.2, mfu=0.5, feasible=True)
    assert bad.speedup(ok) == 0.0
    assert bad.efficiency(ok) == 0.0


def test_validation():
    with pytest.raises(ValueError):
        strong_scaling(LLM, factory, SIZES, 0, OPTS)
    with pytest.raises(ValueError):
        weak_scaling(LLM, factory, SIZES, 0.0, options=OPTS)
