"""Continuous-batching serving-simulator tests."""

import pytest

from repro.hardware import a100_system
from repro.inference import InferenceStrategy
from repro.inference.batching import ServingWorkload, simulate_serving
from repro.llm import LLMConfig

LLM = LLMConfig(name="srv-llm", hidden=2048, attn_heads=16, seq_size=2048,
                num_blocks=16)
SYS = a100_system(8)
STRAT = InferenceStrategy(tensor_par=8, pipeline_par=1, batch=1)


def run(rate, n=60, **kw):
    wl = ServingWorkload(arrival_rate=rate, prompt_len=512, generate_len=64,
                         num_requests=n, seed=7)
    return simulate_serving(LLM, SYS, STRAT, wl, **kw)


def test_all_requests_complete():
    stats = run(5.0)
    assert stats.completed == 60
    assert stats.duration > 0
    assert stats.mean_latency > 0
    assert stats.p95_latency >= stats.mean_latency


def test_determinism():
    a, b = run(5.0), run(5.0)
    assert a.mean_latency == b.mean_latency
    assert a.duration == b.duration


def test_light_load_latency_near_single_request():
    from repro.inference import calculate_inference

    single = calculate_inference(LLM, SYS, STRAT, prompt_len=512,
                                 generate_len=64)
    stats = run(0.05)  # one request every 20 s: no queueing
    assert stats.mean_latency < 3 * single.request_latency
    assert stats.max_queue <= 1
    assert stats.mean_batch <= 1.5


def test_heavier_load_increases_latency_and_batch():
    light = run(0.2)
    heavy = run(20.0)
    assert heavy.mean_latency > light.mean_latency
    assert heavy.mean_batch > light.mean_batch
    assert heavy.max_queue >= light.max_queue


def test_batching_raises_token_throughput():
    light = run(0.2)
    heavy = run(20.0)
    assert heavy.tokens_per_second > light.tokens_per_second


def test_max_batch_caps_occupancy():
    capped = run(20.0, max_batch=2)
    assert capped.mean_batch <= 2.0 + 1e-9
    free = run(20.0)
    assert free.tokens_per_second >= capped.tokens_per_second - 1e-9


def test_oversized_request_rejected():
    from repro.llm import MEGATRON_1T

    wl = ServingWorkload(arrival_rate=1.0, num_requests=4)
    with pytest.raises(ValueError, match="does not fit"):
        simulate_serving(MEGATRON_1T, a100_system(2),
                         InferenceStrategy(tensor_par=2, pipeline_par=1), wl)


def test_workload_validation():
    with pytest.raises(ValueError):
        ServingWorkload(arrival_rate=0.0)
    with pytest.raises(ValueError):
        ServingWorkload(arrival_rate=1.0, num_requests=0)
    with pytest.raises(ValueError):
        run(1.0, max_batch=0)
