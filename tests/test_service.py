"""The evaluation service: caching, coalescing, batching, HTTP, drain.

Most tests drive the transport-free :class:`EvaluationService` directly;
the HTTP tests start a real ``ThreadingHTTPServer`` on an ephemeral port
and talk to it through :class:`ServiceClient`; the final end-to-end test
boots ``python -m repro serve`` in a subprocess, queries it with the CLI,
and SIGTERMs it to prove the graceful drain path.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import pytest

import repro.engine as engine_mod
from repro.engine import evaluate, evaluate_many
from repro.execution import ExecutionStrategy
from repro.obs import MetricsRegistry
from repro.search import RetryPolicy
from repro.service import (
    BadRequest,
    Draining,
    EvaluationService,
    MicroBatcher,
    Overloaded,
    RequestFailed,
    ResultCache,
    ServiceClient,
    ServiceError,
    make_server,
)
from repro.service.server import M_COALESCED

REPO = Path(__file__).resolve().parent.parent

STRATEGY = ExecutionStrategy(
    tensor_par=8, pipeline_par=8, data_par=1, batch=64, recompute="full"
)


def _payload(strategy=STRATEGY, **over):
    body = {"llm": "gpt3-175b", "system": "a100:64"}
    if strategy is not None:
        body["strategy"] = strategy.to_dict()
    body.update(over)
    if body.get("strategy") is None:
        body.pop("strategy", None)
    return body


class CountingEngine:
    """An ``evaluate_many`` wrapper that counts calls and can run slowly."""

    def __init__(self, delay=0.0):
        self.calls = 0
        self.candidates = 0
        self.delay = delay
        self._lock = threading.Lock()

    def __call__(self, llm, system, strategies, **kwargs):
        with self._lock:
            self.calls += 1
            self.candidates += len(strategies)
        if self.delay:
            time.sleep(self.delay)
        return evaluate_many(llm, system, strategies, **kwargs)


def make_service(engine=None, **kw):
    metrics = MetricsRegistry()
    batcher = MicroBatcher(window=0.002, metrics=metrics, engine=engine)
    service = EvaluationService(
        cache=kw.pop("cache", ResultCache(capacity=64, metrics=metrics)),
        batcher=batcher,
        metrics=metrics,
        request_timeout=20.0,
        **kw,
    )
    return service.start()


# ---------------------------------------------------------------------------
# Service core
# ---------------------------------------------------------------------------

def test_cold_then_warm_hits_cache_and_matches_engine():
    engine = CountingEngine()
    service = make_service(engine)
    try:
        cold = service.evaluate_payload(_payload())
        warm = service.evaluate_payload(_payload())
    finally:
        service.stop()
    assert cold["cache"] == "miss"
    assert warm["cache"] == "memory"
    assert engine.calls == 1
    assert cold["key"] == warm["key"]
    assert cold["result"] == warm["result"]
    # The served numbers are the engine's numbers.
    from repro.io import llm_from_spec, system_from_spec

    direct = evaluate(
        llm_from_spec("gpt3-175b"), system_from_spec("a100:64"), STRATEGY
    )
    assert warm["result"]["feasible"] == direct.feasible
    assert warm["result"]["sample_rate"] == pytest.approx(direct.sample_rate)


def test_concurrent_identical_requests_coalesce_to_one_engine_call():
    engine = CountingEngine(delay=0.25)
    service = make_service(engine)
    results, errors = [], []
    barrier = threading.Barrier(8)

    def worker():
        try:
            barrier.wait(timeout=5)
            results.append(service.evaluate_payload(_payload()))
        except Exception as err:  # pragma: no cover - failure reporting
            errors.append(err)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
    finally:
        service.stop()
    assert not errors
    assert len(results) == 8
    # Exactly one engine evaluation for eight identical concurrent queries.
    assert engine.calls == 1
    assert engine.candidates == 1
    sources = sorted(r["cache"] for r in results)
    assert sources.count("miss") == 1
    assert service.metrics.value(M_COALESCED) == 7
    assert len({json.dumps(r["result"], sort_keys=True) for r in results}) == 1


def test_micro_batch_merges_distinct_strategies_into_one_engine_call():
    engine = CountingEngine()
    service = make_service(engine)
    strategies = [STRATEGY.evolve(microbatch=m) for m in (1, 2, 4, 8)]
    try:
        response = service.evaluate_payload(
            _payload(strategies=[s.to_dict() for s in strategies], strategy=None)
        )
    finally:
        service.stop()
    assert response["count"] == 4
    assert engine.calls == 1  # one evaluate_many for the whole batch
    assert engine.candidates == 4
    assert [r["cache"] for r in response["results"]] == ["miss"] * 4


def test_duplicate_strategies_in_one_batch_coalesce():
    engine = CountingEngine()
    service = make_service(engine)
    try:
        response = service.evaluate_payload(
            _payload(
                strategies=[STRATEGY.to_dict(), STRATEGY.to_dict()], strategy=None
            )
        )
    finally:
        service.stop()
    assert [r["cache"] for r in response["results"]] == ["miss", "coalesced"]
    assert engine.candidates == 1
    assert response["results"][0]["result"] == response["results"][1]["result"]


def test_cache_key_changes_with_engine_version(monkeypatch):
    engine = CountingEngine()
    service = make_service(engine)
    try:
        first = service.evaluate_payload(_payload())
        monkeypatch.setattr(engine_mod, "ENGINE_VERSION", engine_mod.ENGINE_VERSION + 1)
        second = service.evaluate_payload(_payload())
    finally:
        service.stop()
    # Same query, new engine semantics: the old entry must not be served.
    assert first["key"] != second["key"]
    assert second["cache"] == "miss"
    assert engine.calls == 2


def test_disk_tier_survives_service_restart(tmp_path):
    engine = CountingEngine()
    metrics = MetricsRegistry()
    service = make_service(
        engine, cache=ResultCache(capacity=64, cache_dir=tmp_path, metrics=metrics)
    )
    try:
        cold = service.evaluate_payload(_payload())
    finally:
        service.stop()

    engine2 = CountingEngine()
    reborn = make_service(
        engine2, cache=ResultCache(capacity=64, cache_dir=tmp_path)
    )
    try:
        warm = reborn.evaluate_payload(_payload())
    finally:
        reborn.stop()
    assert warm["cache"] == "disk"
    assert engine2.calls == 0
    assert warm["result"] == cold["result"]


def test_backpressure_raises_overloaded():
    engine = CountingEngine(delay=0.5)
    service = make_service(engine, max_pending=1)
    first_done = []

    def leader():
        first_done.append(service.evaluate_payload(_payload()))

    t = threading.Thread(target=leader)
    try:
        t.start()
        deadline = time.perf_counter() + 5
        while service.batcher.depth < 1:
            assert time.perf_counter() < deadline, "leader never queued"
            time.sleep(0.005)
        other = STRATEGY.evolve(microbatch=2)
        with pytest.raises(Overloaded) as exc:
            service.evaluate_payload(_payload(strategy=other))
        assert exc.value.status == 503
        assert exc.value.retry_after > 0
    finally:
        t.join(timeout=10)
        service.stop()
    assert len(first_done) == 1


def test_draining_refuses_new_work_but_finishes_inflight():
    engine = CountingEngine(delay=0.3)
    service = make_service(engine)
    results = []

    def leader():
        results.append(service.evaluate_payload(_payload()))

    t = threading.Thread(target=leader)
    try:
        t.start()
        deadline = time.perf_counter() + 5
        while service.batcher.depth < 1:
            assert time.perf_counter() < deadline
            time.sleep(0.005)
        service.begin_drain()
        with pytest.raises(Draining):
            service.evaluate_payload(_payload(strategy=STRATEGY.evolve(microbatch=2)))
        assert service.drain(timeout=10)
    finally:
        t.join(timeout=10)
        service.stop()
    # The in-flight request completed despite the drain.
    assert len(results) == 1 and results[0]["result"]["feasible"] is not None
    # Cache hits are still served while draining.
    warm = service.evaluate_payload(_payload())
    assert warm["cache"] == "memory"


def test_bad_requests_are_rejected():
    service = make_service()
    try:
        with pytest.raises(BadRequest):
            service.evaluate_payload(["not", "an", "object"])
        with pytest.raises(BadRequest):
            service.evaluate_payload({"llm": "gpt3-175b"})
        with pytest.raises(BadRequest):
            service.evaluate_payload(_payload(llm="no-such-model"))
        with pytest.raises(BadRequest):
            service.evaluate_payload(_payload(system="q100:64"))
        with pytest.raises(BadRequest):
            service.evaluate_payload(
                {"llm": "gpt3-175b", "system": "a100:64", "strategy": {"bogus": 1}}
            )
        with pytest.raises(BadRequest):
            service.evaluate_payload(_payload(strategies=[], strategy=None))
    finally:
        service.stop()


class FailingEngine:
    """An ``evaluate_many`` stand-in that always explodes."""

    def __init__(self):
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, llm, system, strategies, **kwargs):
        with self._lock:
            self.calls += 1
        raise RuntimeError("engine exploded")


def test_engine_failure_settles_every_inflight_key():
    # A multi-strategy request whose batch fails must settle *all* its
    # rendezvous futures — including entries after the one whose _finish
    # raised — so the keys stay retryable instead of wedging forever.
    engine = FailingEngine()
    service = make_service(engine)
    strategies = [STRATEGY.to_dict(), STRATEGY.evolve(microbatch=2).to_dict()]
    try:
        with pytest.raises(ServiceError):
            service.evaluate_payload(_payload(strategies=strategies, strategy=None))
        assert service._inflight == {}
        # The second key leads a fresh evaluation rather than coalescing
        # onto a dead future and timing out.
        with pytest.raises(ServiceError):
            service.evaluate_payload(
                _payload(strategy=STRATEGY.evolve(microbatch=2))
            )
        assert engine.calls >= 2
        assert service.drain(timeout=10)
    finally:
        service.stop()


class ExplodingCache(ResultCache):
    """A cache whose disk tier is broken: every put raises."""

    def put(self, key, value):
        raise OSError("disk full")


def test_cache_put_failure_still_serves_result_and_settles():
    engine = CountingEngine()
    service = make_service(engine, cache=ExplodingCache(capacity=4))
    try:
        response = service.evaluate_payload(_payload())
        assert response["cache"] == "miss"
        assert response["result"]["feasible"] is not None
        assert service._inflight == {}
    finally:
        service.stop()


def test_healthz_and_presets_payloads():
    service = make_service()
    try:
        health = service.healthz_payload()
        assert health["status"] == "ok"
        assert health["cache"]["memory_entries"] == 0
        presets = service.presets_payload()["presets"]
        assert any(p["name"] == "gpt3-175b" for p in presets)
        service.evaluate_payload(_payload())
        assert service.healthz_payload()["cache"]["memory_entries"] == 1
    finally:
        service.stop()


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------

@pytest.fixture()
def http_server(tmp_path):
    server = make_server(port=0, cache_dir=str(tmp_path / "cache"), batch_window=0.002)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.service.stop()
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def test_http_end_to_end(http_server):
    client = ServiceClient(f"http://127.0.0.1:{http_server.port}")
    assert client.healthz()["status"] == "ok"
    assert any(p["name"] == "gpt3-175b" for p in client.presets())

    cold = client.evaluate("gpt3-175b", "a100:64", STRATEGY)
    warm = client.evaluate("gpt3-175b", "a100:64", STRATEGY)
    assert cold["cache"] == "miss"
    assert warm["cache"] == "memory"
    assert warm["result"]["feasible"] is True

    many = client.evaluate_many(
        "gpt3-175b", "a100:64", [STRATEGY, STRATEGY.evolve(microbatch=2)]
    )
    assert [r["cache"] for r in many] == ["memory", "miss"]

    text = client.metrics_text()
    assert "# TYPE repro_service_requests counter" in text
    assert client.metric_value("repro_service_cache_hit_memory") >= 2.0
    assert client.metric_value("repro_service_dispatch_engine_calls") >= 1.0

    # The engine's bound/comm-cache counters are pre-registered by the
    # MicroBatcher: the service never bound-prunes (every request needs its
    # real result), while the comm kernel caches see real traffic.
    assert "# TYPE repro_engine_bound_pruned counter" in text
    assert client.metric_value("repro_engine_bound_pruned") == 0.0
    # The adaptive tile/skip/seed counters ride the same pre-registration
    # and likewise stay 0 on the request path (no top-k search here).
    for name in ("repro_engine_bound_tiles",
                 "repro_engine_bound_skipped_buckets",
                 "repro_engine_surrogate_seeded"):
        assert f"# TYPE {name} counter" in text
        assert client.metric_value(name) == 0.0
    assert (
        client.metric_value("repro_engine_comm_cache_hits")
        + client.metric_value("repro_engine_comm_cache_misses")
    ) >= 1.0

    # Request latency is a real Prometheus histogram family with cumulative
    # buckets, and the hit-ratio / backlog gauges describe current state.
    assert "# TYPE repro_service_request_seconds histogram" in text
    assert 'repro_service_request_seconds_bucket{le="+Inf"}' in text
    assert client.metric_value("repro_service_request_seconds_count") >= 3.0
    assert client.metric_value("repro_service_request_seconds_sum") > 0.0
    assert 0.0 < client.metric_value("repro_service_cache_hit_ratio") < 1.0
    assert client.metric_value("repro_service_backlog_limit") == 256.0
    assert "# TYPE repro_service_pending gauge" in text
    assert "# TYPE repro_service_inflight_keys gauge" in text
    assert client.metric_value("repro_service_dispatch_batch_seconds_count") >= 1.0


def test_http_trace_header_merges_server_spans(http_server):
    from repro.obs import Tracer, validate_trace

    client = ServiceClient(f"http://127.0.0.1:{http_server.port}")
    tracer = Tracer()
    with tracer.span("query", cat="service.client"):
        first = client.evaluate("gpt3-175b", "a100:64", STRATEGY, tracer=tracer)
        second = client.evaluate_many(
            "gpt3-175b", "a100:64", [STRATEGY], tracer=tracer
        )
    # The trace payload is popped before the caller sees the response.
    assert "trace" not in first
    assert all("trace" not in r for r in second)

    trace = tracer.to_chrome()
    validate_trace(trace)
    assert trace["otherData"]["trace_id"] == tracer.trace_id
    server_spans = [
        e for e in trace["traceEvents"]
        if e.get("ph") == "X" and e.get("cat") == "service.request"
    ]
    assert len(server_spans) == 2
    assert all(
        s["args"]["trace_id"] == tracer.trace_id for s in server_spans
    )
    # The client-side "query" span is on the same timeline (one timebase).
    client_spans = [
        e for e in trace["traceEvents"]
        if e.get("ph") == "X" and e.get("cat") == "service.client"
    ]
    assert len(client_spans) == 1
    q = client_spans[0]
    for s in server_spans:
        assert q["ts"] <= s["ts"] and s["ts"] + s["dur"] <= q["ts"] + q["dur"]


def test_http_untraced_request_has_no_trace_key(http_server):
    client = ServiceClient(f"http://127.0.0.1:{http_server.port}")
    response = client.evaluate("gpt3-175b", "a100:64", STRATEGY)
    assert "trace" not in response


def test_http_error_mapping(http_server):
    client = ServiceClient(f"http://127.0.0.1:{http_server.port}")
    with pytest.raises(RequestFailed) as exc:
        client.evaluate("no-such-model", "a100:64", STRATEGY)
    assert exc.value.status == 400
    with pytest.raises(RequestFailed) as exc:
        client._request("GET", "/nope")
    assert exc.value.status == 404


def test_http_oversized_body_closes_keepalive_connection(http_server):
    # The handler refuses to read an oversized body; it must then close the
    # keep-alive connection (advertised via Connection: close) so the unread
    # bytes cannot be parsed as the next request on the same socket.
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", http_server.port, timeout=10)
    try:
        conn.putrequest("POST", "/evaluate")
        conn.putheader("Content-Type", "application/json")
        conn.putheader("Content-Length", str(8 * 2**20 + 1))
        conn.endheaders()
        # Junk that a desynced server would misparse as a pipelined request.
        conn.send(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        resp = conn.getresponse()
        assert resp.status == 400
        assert resp.getheader("Connection") == "close"
        resp.read()
    finally:
        conn.close()


def test_http_concurrent_identical_queries_coalesce(http_server):
    client = ServiceClient(f"http://127.0.0.1:{http_server.port}")
    strategy = STRATEGY.evolve(microbatch=4)
    barrier = threading.Barrier(6)
    results, errors = [], []

    def worker():
        try:
            barrier.wait(timeout=5)
            results.append(client.evaluate("gpt3-175b", "a100:64", strategy))
        except Exception as err:  # pragma: no cover - failure reporting
            errors.append(err)

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=15)
    assert not errors
    sources = [r["cache"] for r in results]
    assert sources.count("miss") == 1
    assert all(s in ("miss", "coalesced", "memory") for s in sources)
    assert len({r["key"] for r in results}) == 1


class _FlakyHandler(BaseHTTPRequestHandler):
    failures = 2
    seen = 0

    def do_GET(self):  # noqa: N802
        cls = type(self)
        cls.seen += 1
        if cls.seen <= cls.failures:
            body = b'{"error": "try later"}'
            self.send_response(503)
            self.send_header("Retry-After", "0.01")
        else:
            body = b'{"status": "ok"}'
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass


def test_client_retries_503_with_backoff():
    _FlakyHandler.seen = 0
    server = ThreadingHTTPServer(("127.0.0.1", 0), _FlakyHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}",
            retry=RetryPolicy(max_retries=3, backoff_base=0.01, backoff_max=0.05),
        )
        assert client.healthz()["status"] == "ok"
        assert _FlakyHandler.seen == 3
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_client_gives_up_when_service_never_answers():
    from repro.service import ServiceUnavailable

    client = ServiceClient(
        "http://127.0.0.1:1",  # nothing listens on port 1
        retry=RetryPolicy(max_retries=1, backoff_base=0.01, backoff_max=0.01),
        timeout=0.5,
    )
    with pytest.raises(ServiceUnavailable):
        client.healthz()


# ---------------------------------------------------------------------------
# CLI / process end-to-end: serve, query, SIGTERM drain
# ---------------------------------------------------------------------------

def test_serve_query_sigterm_end_to_end(tmp_path):
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"), PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", str(tmp_path / "cache")],
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=str(tmp_path),
    )
    try:
        line = proc.stderr.readline()
        assert "http://" in line, f"unexpected banner: {line!r}"
        url = "http://" + line.split("http://", 1)[1].split()[0]

        def query(fmt):
            return subprocess.run(
                [sys.executable, "-m", "repro", "query", "gpt3-175b", "a100:64",
                 "--batch", "64", "--recompute", "full", "--url", url,
                 "--format", fmt],
                capture_output=True,
                text=True,
                env=env,
                cwd=str(tmp_path),
                timeout=60,
            )
        cold = query("json")
        assert cold.returncode == 0, cold.stderr
        assert json.loads(cold.stdout)["cache"] == "miss"
        warm = query("json")
        assert json.loads(warm.stdout)["cache"] == "memory"
        text = query("text")
        assert "cache: memory" in text.stdout
        assert "batch time" in text.stdout

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
