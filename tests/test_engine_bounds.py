"""Bound-and-prune layer: roofline lower bounds, thresholds, comm caches.

The load-bearing invariants of ``repro.engine.bounds``:

* the roofline lower bound never exceeds the fully-assembled batch time
  (checked property-based over randomized valid triples — this is what
  makes pruning lossless);
* ``prune_threshold_for_rate`` round-trips soundly through float division
  (a candidate at the returned threshold can never beat the rate floor);
* a pruned top-k search is bit-identical to an unpruned one over an
  exhaustive space;
* the engine's policy gates (constraint / keep_rates / top_k) keep pruning
  off whenever a pruned marker could corrupt the caller's outputs.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.engine import (
    PrunedResult,
    clear_caches,
    comm_cache_stats,
    evaluate,
    evaluate_many,
    prune_threshold_for_rate,
    roofline_lower_bound,
)
from repro.engine.context import EvalContext
from repro.engine.profile import profile_block, profile_key
from repro.engine.stages import fill_scalars, stage_memory
from repro.execution import ExecutionStrategy, factorizations
from repro.hardware import a100_system
from repro.llm import GPT3_175B, LLMConfig
from repro.obs import MetricsRegistry, PruneStats
from repro.search import SearchOptions, hill_climb, search

# Small systems keep each full evaluation fast; the big-memory variant
# exercises the timing path on shapes the 80 GiB system would reject.
SMALL = a100_system(8)
BIG = a100_system(8, hbm_gib=1_000_000)

# GPT-3 175B needs ~150 GiB/GPU at 16 GPUs for weights + optimizer state, so
# the stock 80 GiB system rejects everything; 200 GiB gives the space a real
# feasible/infeasible mix (~15% feasible) while staying fast to sweep.
GPT3_16 = a100_system(16, hbm_gib=200)

small_shapes = st.sampled_from(
    [
        (512, 8, 256, 8),
        (1024, 16, 512, 12),
        (2048, 16, 1024, 16),
        (1536, 12, 768, 6),
        (4096, 32, 2048, 24),
    ]
)


def make_llm(shape) -> LLMConfig:
    h, a, s, L = shape
    return LLMConfig(name=f"bound-{h}-{a}", hidden=h, attn_heads=a, seq_size=s,
                     num_blocks=L)


def fast_path_bound(llm, system, strategy) -> float | None:
    """Run exactly the fast path the engine runs, then bound it."""
    strategy.validate(llm, system)
    ctx = EvalContext(llm, system, strategy)
    fill_scalars(ctx)
    ctx.prof = profile_block(llm, system, *profile_key(strategy))
    stage_memory(ctx)
    if ctx.error is not None:
        return None
    return roofline_lower_bound(ctx)


# -- the soundness property ---------------------------------------------------


@given(
    shape=small_shapes,
    tpd=st.sampled_from(list(factorizations(8))),
    m=st.sampled_from([1, 2, 4]),
    v=st.sampled_from([1, 2]),
    recompute=st.sampled_from(["none", "attn_only", "full"]),
    seq_par=st.booleans(),
    tp_overlap=st.sampled_from(["none", "ring"]),
    dp_overlap=st.booleans(),
    sharding=st.booleans(),
    big_mem=st.booleans(),
    training=st.booleans(),
)
@settings(max_examples=150, deadline=None)
def test_bound_never_exceeds_batch_time(
    shape, tpd, m, v, recompute, seq_par, tp_overlap, dp_overlap, sharding,
    big_mem, training,
):
    """The pruning invariant: lower bound <= batch time, in float arithmetic."""
    llm = make_llm(shape)
    system = BIG if big_mem else SMALL
    t, p, d = tpd
    batch = 8
    assume(llm.attn_heads % t == 0 and llm.hidden % t == 0)
    assume(llm.feedforward % t == 0)
    assume(p <= llm.num_blocks)
    assume(batch % d == 0 and (batch // d) % m == 0)
    assume(not seq_par or (t > 1 and llm.seq_size % t == 0))
    assume(v == 1 or p > 1)
    strategy = ExecutionStrategy(
        tensor_par=t, pipeline_par=p, data_par=d, batch=batch, microbatch=m,
        pp_interleaving=v, recompute=recompute, seq_par=seq_par,
        tp_redo_sp=seq_par, pp_rs_ag=seq_par, tp_overlap=tp_overlap,
        dp_overlap=dp_overlap, optimizer_sharding=sharding, training=training,
    )
    try:
        bound = fast_path_bound(llm, system, strategy)
    except Exception:
        assume(False)
    assume(bound is not None)
    full = evaluate(llm, system, strategy)
    assert full.feasible
    assert bound <= full.batch_time


def test_bound_sound_across_gpt3_space():
    """Every memory-feasible candidate of a real space satisfies the bound."""
    system = GPT3_16
    strategies = list(
        candidates := candidate_list(GPT3_175B, system, batch=32)
    )
    results = evaluate_many(GPT3_175B, system, strategies)
    checked = 0
    for s, r in zip(candidates, results):
        if not r.feasible:
            continue
        bound = fast_path_bound(GPT3_175B, system, s)
        assert bound is not None
        assert bound <= r.batch_time
        checked += 1
    assert checked > 0


def candidate_list(llm, system, batch):
    from repro.search import candidate_strategies

    return list(candidate_strategies(llm, system, batch, SearchOptions()))


# -- threshold round-trip -----------------------------------------------------


def test_threshold_edge_cases():
    assert prune_threshold_for_rate(64.0, 0.0) == math.inf
    assert prune_threshold_for_rate(64.0, -1.0) == math.inf
    assert prune_threshold_for_rate(64.0, math.inf) == math.inf  # 64/inf == 0
    t = prune_threshold_for_rate(64.0, 8.0)
    assert t == pytest.approx(8.0)


@given(
    batch=st.sampled_from([1.0, 8.0, 64.0, 4096.0]),
    rate=st.floats(1e-6, 1e9, allow_nan=False, allow_infinity=False),
)
@settings(max_examples=200, deadline=None)
def test_threshold_round_trip_sound(batch, rate):
    """Anything at or above the threshold can never beat the rate floor.

    This is what makes the heap's strict `rate > floor` admission and the
    engine's `bound >= threshold` prune test exact mirror images.
    """
    t = prune_threshold_for_rate(batch, rate)
    assert batch / t <= rate
    # ...and it is tight: the nextafter bump loop never wanders more than a
    # few ulps above the naive quotient, so pruning is not conservative.
    assert t == pytest.approx(batch / rate, rel=1e-12)


# -- PrunedResult semantics ---------------------------------------------------


def test_pruned_result_marker():
    pr = PrunedResult(batch=64, lower_bound=1.5)
    assert pr.feasible is True
    assert pr.pruned is True
    assert pr.sample_rate == 0.0
    assert pr.infeasibility == ""
    # Fully-evaluated results advertise the flag too, as False.
    res = evaluate(
        GPT3_175B, GPT3_16,
        ExecutionStrategy(tensor_par=8, pipeline_par=2, data_par=1, batch=32,
                          microbatch=1, recompute="full"),
    )
    assert res.pruned is False


# -- end-to-end equivalence ---------------------------------------------------


def test_search_topk_bit_identical_with_pruning():
    """Pruned and unpruned serial searches agree on every retained entry."""
    llm = GPT3_175B
    system = GPT3_16
    # columnar=False: this exercises the *scalar* bound-prune layer (the
    # pure-columnar search path never computes bounds; see PERFORMANCE.md).
    base = search(llm, system, 32, top_k=8, workers=0, keep_rates=False,
                  bound_prune=False, columnar=False, collect_stats=True)
    pruned = search(llm, system, 32, top_k=8, workers=0, keep_rates=False,
                    bound_prune=True, columnar=False, collect_stats=True)
    assert base.num_evaluated == pruned.num_evaluated
    assert base.num_feasible == pruned.num_feasible
    assert len(base.top) == len(pruned.top)
    for (s1, r1), (s2, r2) in zip(base.top, pruned.top):
        assert s1 == s2
        assert r1 == r2  # frozen dataclass: every float field compared
    assert pruned.stats.engine.bound_pruned > 0
    assert base.stats.engine.bound_pruned == 0
    assert pruned.stats.engine.evaluated_full < base.stats.engine.evaluated_full


def test_seeded_search_same_rates():
    llm = GPT3_175B
    system = GPT3_16
    base = search(llm, system, 32, top_k=8, workers=0, keep_rates=False,
                  bound_prune=False)
    seeded = search(llm, system, 32, top_k=8, workers=0, keep_rates=False,
                    bound_prune=True, prune_seed=64)
    assert [r.sample_rate for _, r in seeded.top] == [
        r.sample_rate for _, r in base.top
    ]
    assert seeded.num_feasible == base.num_feasible


def test_pruning_disabled_with_constraint_and_rates():
    """The policy gates: constraint or keep_rates force pruning off."""
    llm = GPT3_175B
    system = GPT3_16
    constrained = search(llm, system, 32, top_k=4, workers=0, keep_rates=False,
                         constraint=_mfu_floor, collect_stats=True)
    assert constrained.stats.engine.bound_pruned == 0
    with_rates = search(llm, system, 32, top_k=4, workers=0, keep_rates=True,
                        collect_stats=True)
    assert with_rates.stats.engine.bound_pruned == 0
    # Fig. 6 contract: the histogram still covers every feasible candidate.
    assert len(with_rates.sample_rates) == with_rates.num_feasible


def _mfu_floor(res):
    return res.mfu > 0.01


def test_hill_climb_unchanged_by_pruning():
    seed = ExecutionStrategy(tensor_par=8, pipeline_par=1, data_par=1,
                             batch=16, microbatch=1, recompute="full")
    llm = GPT3_175B
    system = a100_system(8, hbm_gib=1_000_000)
    a = hill_climb(llm, system, seed, bound_prune=False)
    b = hill_climb(llm, system, seed, bound_prune=True)
    assert a is not None and b is not None
    assert a.best == b.best
    assert a.best_strategy == b.best_strategy
    assert a.evaluations == b.evaluations
    assert a.steps == b.steps


# -- metrics and caches -------------------------------------------------------


def test_prune_stats_counters_flow():
    llm = GPT3_175B
    system = GPT3_16
    strategies = candidate_list(llm, system, batch=32)
    base = evaluate_many(llm, system, strategies)
    best = sorted((r.sample_rate for r in base if r.feasible), reverse=True)
    threshold = prune_threshold_for_rate(32.0, best[0])
    mx = MetricsRegistry()
    res = evaluate_many(llm, system, strategies, prune_above=threshold,
                        metrics=mx)
    stats = PruneStats.from_metrics(mx)
    n_pruned = sum(1 for r in res if r.pruned)
    assert n_pruned > 0
    assert stats.bound_pruned == n_pruned
    assert stats.bound_evals > 0
    assert stats.candidates == len(strategies)
    # Identity: every candidate is rejected, pruned, or fully evaluated.
    assert (
        stats.rejected_validate + stats.rejected_memory
        + stats.bound_pruned + stats.evaluated_full
    ) == stats.candidates
    assert 0.0 < stats.bound_prune_rate <= 1.0
    assert "bound pruned" in stats.summary()
    merged = stats.merged(stats)
    assert merged.bound_pruned == 2 * n_pruned


def test_comm_cache_counters_and_clear():
    clear_caches()
    assert comm_cache_stats() == (0, 0)
    llm = GPT3_175B
    system = GPT3_16
    strategies = candidate_list(llm, system, batch=32)
    mx = MetricsRegistry()
    evaluate_many(llm, system, strategies, metrics=mx)
    hits, misses = comm_cache_stats()
    assert misses > 0
    assert hits + misses > 0
    stats = PruneStats.from_metrics(mx)
    assert stats.comm_cache_hits + stats.comm_cache_misses == hits + misses
    # Re-running the same space is all hits.
    mx2 = MetricsRegistry()
    evaluate_many(llm, system, strategies, metrics=mx2)
    stats2 = PruneStats.from_metrics(mx2)
    assert stats2.comm_cache_misses == 0
    assert stats2.comm_cache_hits > 0
    assert stats2.comm_cache_hit_rate == 1.0
    clear_caches()
    assert comm_cache_stats() == (0, 0)


def test_dynamic_threshold_callable():
    """A callable threshold is re-read as the caller's best improves."""
    llm = GPT3_175B
    system = GPT3_16
    strategies = candidate_list(llm, system, batch=32)
    ceiling = [math.inf]
    best_rate = [0.0]

    def threshold():
        return ceiling[0]

    from repro.engine import iter_evaluate

    # columnar=False: the per-candidate threshold re-read is a scalar-path
    # behavior — the columnar engine reads a callable threshold once per
    # batch (the documented divergence; see PERFORMANCE.md).
    results = {}
    for i, res in iter_evaluate(llm, system, strategies,
                                prune_above=threshold, columnar=False):
        results[i] = res
        if res.feasible and not res.pruned and res.sample_rate > best_rate[0]:
            best_rate[0] = res.sample_rate
            ceiling[0] = prune_threshold_for_rate(32.0, best_rate[0])
    assert any(r.pruned for r in results.values())
    # The running best is never pruned away: it matches the true optimum.
    base = evaluate_many(llm, system, strategies)
    true_best = max(r.sample_rate for r in base if r.feasible)
    assert best_rate[0] == true_best
