"""Distributed flight recorder end-to-end: one trace across every boundary.

The acceptance scenario for the observability stack: a checkpointed
multi-process search and an HTTP service query share one
:class:`~repro.obs.Tracer`, and the stitched Chrome trace carries
coordinator, worker and server spans under a single ``trace_id`` on the
shared ``perf_counter`` timebase — plus the edge cases that make the
stitching trustworthy:

* a worker that crashes mid-span still appears on the timeline (the
  supervisor closes a ``search.fault`` span on its behalf);
* a resumed checkpoint continues the *original* trace_id, so both
  invocations stitch into one trace;
* pool-exhausted chunks degrade to a serial fallback whose lifecycle the
  journal records.
"""

import json
import os
import threading

import pytest

from repro.hardware import a100_system
from repro.llm import LLMConfig
from repro.obs import (
    EventJournal,
    Tracer,
    read_events,
    validate_events,
    validate_trace,
)
from repro.obs.analyze import analyze_trace
from repro.search import (
    FaultInjector,
    RetryPolicy,
    SearchOptions,
    run_supervised,
    search,
)
from repro.service import ServiceClient, make_server

LLM = LLMConfig(name="fr-llm", hidden=2048, attn_heads=16, seq_size=1024,
                num_blocks=16)
SYS = a100_system(8)
BATCH = 16

# A feasible paper-scale configuration for the service round trip.
STRATEGY = {"tensor_par": 8, "pipeline_par": 8, "data_par": 1, "batch": 64,
            "microbatch": 1, "recompute": "full"}


def tiny_options():
    """Exactly 4 candidates (pp in 1/2/4/8) -> 4 chunks at ``workers=2``."""
    return SearchOptions(
        recompute=("full",),
        seq_par_modes=((False, False, False),),
        tp_overlap=("none",),
        dp_overlap=(False,),
        optimizer_sharding=(False,),
        fused_activations=(False,),
        max_microbatch=1,
        max_tensor_par=1,
        interleaving_values=(1,),
    )


def _flaky(args):
    """Module-level (picklable) chunk fn for pool tests."""
    index, injector = args
    if injector is not None:
        injector.fire(index)
    return index * 7


# ---------------------------------------------------------------------------
# Edge cases
# ---------------------------------------------------------------------------

def test_worker_crash_mid_span_is_closed_by_supervisor(tmp_path):
    tracer = Tracer()
    injector = FaultInjector(1, mode="exception", fail_attempts=1,
                             state_path=tmp_path / "attempts")
    with EventJournal(tmp_path / "ev.jsonl", source="search") as journal:
        result = search(
            LLM, SYS, BATCH, tiny_options(), top_k=2, workers=2,
            keep_rates=False, tracer=tracer, events=journal,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_retries=2, backoff_base=0.01),
        )
    assert result.best is not None
    assert result.num_evaluated == 4  # the retried chunk recovered
    # The crashed attempt never returned its own span; the supervisor
    # closed one on its behalf, so the timeline shows the failure.
    fault_spans = [e for e in tracer.events()
                   if e.get("cat") == "search.fault" and e["ph"] == "X"]
    assert any(s["name"] == "chunk[1] failed" for s in fault_spans)
    retries = [e for e in read_events(tmp_path / "ev.jsonl")
               if e["kind"] == "chunk.retry"]
    assert retries and all(e["chunk"] == 1 for e in retries)


def test_resumed_checkpoint_continues_original_trace_id(tmp_path):
    checkpoint = tmp_path / "ck.jsonl"
    first = Tracer()
    with EventJournal(tmp_path / "ev1.jsonl", source="search") as journal:
        baseline = search(LLM, SYS, BATCH, tiny_options(), top_k=2,
                          workers=0, keep_rates=False, tracer=first,
                          events=journal, checkpoint=checkpoint)

    second = Tracer()
    fresh_id = second.trace_id
    assert fresh_id != first.trace_id
    with EventJournal(tmp_path / "ev2.jsonl", source="search") as journal:
        resumed = search(LLM, SYS, BATCH, tiny_options(), top_k=2,
                         workers=0, keep_rates=False, tracer=second,
                         events=journal, checkpoint=checkpoint, resume=True)
    # The journal's trace identity wins: both invocations stitch into one
    # trace rather than forking a new id per resume.
    assert second.trace_id == first.trace_id != fresh_id
    events = read_events(tmp_path / "ev2.jsonl")
    assert sum(e["kind"] == "chunk.resumed" for e in events) == 4
    (start,) = [e for e in events if e["kind"] == "search.start"]
    assert start["trace_id"] == first.trace_id
    assert resumed.best.sample_rate == baseline.best.sample_rate


def test_serial_fallback_lifecycle_is_journaled(tmp_path):
    tracer = Tracer()
    # Pool attempts 0 and 1 fail; the in-parent serial re-run succeeds.
    injector = FaultInjector(1, mode="exception", fail_attempts=2,
                             state_path=tmp_path / "attempts")
    with EventJournal(tmp_path / "ev.jsonl", source="search") as journal:
        report = run_supervised(
            _flaky, {i: (i, injector) for i in range(3)}, workers=2,
            policy=RetryPolicy(max_retries=1, backoff_base=0.0,
                               backoff_max=0.0),
            events=journal, tracer=tracer,
        )
    assert report.results == {0: 0, 1: 7, 2: 14}
    assert report.skipped == []
    events = read_events(tmp_path / "ev.jsonl")
    kinds = [e["kind"] for e in events if e.get("chunk") == 1]
    assert kinds.count("chunk.retry") == 2  # attempt 0, then exhausted
    assert any(e["kind"] == "chunk.retry" and e.get("exhausted")
               for e in events)
    assert "chunk.serial_fallback" in kinds
    done = [e for e in events
            if e["kind"] == "chunk.done" and e["chunk"] == 1]
    assert [e.get("mode") for e in done] == ["serial_fallback"]
    # Both failed pool attempts are visible as supervisor-closed spans.
    failed = [e for e in tracer.events() if e.get("cat") == "search.fault"]
    assert len(failed) == 2


# ---------------------------------------------------------------------------
# The acceptance scenario: one trace across search + service
# ---------------------------------------------------------------------------

def test_search_and_service_stitch_into_one_trace(tmp_path, capsys):
    tracer = Tracer()
    events_path = tmp_path / "events.jsonl"
    trace_path = tmp_path / "trace.json"

    # Phase 1: checkpointed 4-chunk multi-process search.
    journal = EventJournal(events_path, source="search",
                           trace_id=tracer.trace_id)
    try:
        result = search(LLM, SYS, BATCH, tiny_options(), top_k=2,
                        workers=2, keep_rates=False, tracer=tracer,
                        events=journal, checkpoint=tmp_path / "ck.jsonl")
    finally:
        journal.close()
    assert result.best is not None

    # Phase 2: a traced service query against a live HTTP server sharing
    # the flight-recorder journal.
    server = make_server(port=0, cache_dir=str(tmp_path / "cache"),
                         batch_window=0.002, events_path=str(events_path))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(f"http://127.0.0.1:{server.port}")
        with tracer.span("query", cat="service.client"):
            response = client.evaluate("gpt3-175b", "a100:64", STRATEGY,
                                       tracer=tracer)
        assert response["result"]["feasible"] is True
    finally:
        server.service.stop()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        if server.service.events is not None:
            server.service.events.close()

    # One valid Chrome trace, one trace_id, three roles.
    tracer.write(trace_path)
    chrome = json.loads(trace_path.read_text())
    assert validate_trace(chrome) == []
    assert chrome["otherData"]["trace_id"] == tracer.trace_id

    spans = [e for e in chrome["traceEvents"] if e.get("ph") == "X"]
    chunk_spans = [s for s in spans if s.get("cat") == "search.chunk"]
    assert len(chunk_spans) == 4
    worker_pids = {s["pid"] for s in chunk_spans} - {os.getpid()}
    assert worker_pids  # chunks really ran out-of-process
    assert all(s["args"]["trace_id"] == tracer.trace_id for s in chunk_spans)

    (server_span,) = [s for s in spans if s.get("cat") == "service.request"]
    assert server_span["args"]["trace_id"] == tracer.trace_id
    (client_span,) = [s for s in spans if s.get("cat") == "service.client"]
    # Shared perf_counter timebase: the server's work nests inside the
    # client span and follows every search chunk.
    assert client_span["ts"] <= server_span["ts"]
    assert (server_span["ts"] + server_span["dur"]
            <= client_span["ts"] + client_span["dur"] + 1.0)
    assert min(s["ts"] for s in chunk_spans) < client_span["ts"]

    # The shared journal validates and covers both roles.
    events = read_events(events_path)
    assert validate_events(events) == []
    kinds = {e["kind"] for e in events}
    assert {"search.start", "chunk.dispatch", "chunk.done", "search.done",
            "request.done", "cache.miss", "batch.dispatch"} <= kinds
    sources = {e.get("source") for e in events}
    assert {"search", "server"} <= sources

    # The analyzer reports a critical path over the stitched trace.
    report = analyze_trace(chrome, events)
    assert report.trace_id == tracer.trace_id
    assert report.critical_path
    assert report.critical_path_s > 0
    assert len(report.lanes) >= 2
    assert report.cache is not None and report.cache["misses"] >= 1

    # And so does the CLI, in JSON mode.
    from repro.cli import main

    rc = main(["trace", str(trace_path), "--events", str(events_path),
               "--json"])
    assert rc == 0
    decoded = json.loads(capsys.readouterr().out)
    assert decoded["trace_id"] == tracer.trace_id
    assert decoded["critical_path"]
    assert decoded["event_count"] == len(events)
