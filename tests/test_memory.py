"""Memory-tier model tests (paper §2.2)."""

import pytest

from repro.hardware import INFINITE_TIER, MemoryTier
from repro.units import GB, GiB, TB


def tier(**kw):
    base = dict(name="hbm", capacity=80 * GiB, bandwidth=2 * TB, efficiency=0.6)
    base.update(kw)
    return MemoryTier(**base)


def test_large_access_uses_full_efficiency():
    t = tier()
    assert t.effective_bandwidth(1 * GiB) == pytest.approx(2 * TB * 0.6)


def test_small_access_is_penalized():
    t = tier()
    assert t.effective_bandwidth(8192) < t.effective_bandwidth(1 * GiB)


def test_tiny_access_floors_at_min_efficiency():
    t = tier(min_efficiency=0.1)
    assert t.effective_bandwidth(1024) == pytest.approx(2 * TB * 0.1)


def test_access_time_scales_linearly_beyond_threshold():
    t = tier()
    assert t.access_time(2 * GiB) == pytest.approx(2 * t.access_time(1 * GiB))


def test_access_time_zero_bytes():
    assert tier().access_time(0) == 0.0


def test_access_time_rejects_negative():
    with pytest.raises(ValueError):
        tier().access_time(-5)


def test_fits_respects_capacity():
    t = tier()
    assert t.fits(80 * GiB)
    assert not t.fits(80 * GiB + 1)


def test_infinite_tier():
    assert INFINITE_TIER.fits(1e30)
    assert INFINITE_TIER.access_time(1e30) == 0.0


def test_validation_rejects_bad_bandwidth():
    with pytest.raises(ValueError):
        tier(bandwidth=0)


def test_validation_rejects_bad_efficiency():
    with pytest.raises(ValueError):
        tier(efficiency=0.0)
    with pytest.raises(ValueError):
        tier(efficiency=1.2)


def test_validation_rejects_min_above_efficiency():
    with pytest.raises(ValueError):
        tier(efficiency=0.5, min_efficiency=0.6)


def test_offload_tier_realistic_rate():
    ddr = MemoryTier(name="ddr5", capacity=512 * GiB, bandwidth=100 * GB, efficiency=0.9)
    # Moving one 100 MB tensor takes about a millisecond at 90 GB/s.
    assert ddr.access_time(100e6) == pytest.approx(100e6 / 90e9, rel=1e-6)
