"""Terminal-rendering helper tests."""

import pytest

from repro.viz import hbar, heat_grid, scaling_plot, stacked_bars, table


def test_hbar_proportional_widths():
    bar = hbar([("a", 3.0), ("b", 1.0)], total_width=40)
    assert bar.count("#") == 30
    assert bar.count("=") == 10


def test_hbar_with_external_scale():
    bar = hbar([("a", 1.0)], total_width=40, scale_max=2.0)
    assert bar.count("#") == 20


def test_hbar_empty():
    assert hbar([], total_width=40) == "(empty)"
    assert hbar([("a", 0.0)]) == "(empty)"


def test_stacked_bars_shared_scale_and_legend():
    out = stacked_bars(
        [
            ("row1", [("fw", 2.0), ("bw", 4.0)]),
            ("row2", [("fw", 1.0), ("bw", 2.0)]),
        ],
        width=30,
        unit=" s",
    )
    lines = out.splitlines()
    assert len(lines) == 3
    assert "6 s" in lines[0]
    assert "3 s" in lines[1]
    assert lines[2].startswith("legend:")
    assert "fw" in lines[2] and "bw" in lines[2]
    # Shared scale: row2's bar is half of row1's.
    assert lines[1].count("#") + lines[1].count("=") < lines[0].count("#") + lines[
        0
    ].count("=")


def test_stacked_bars_no_rows():
    assert stacked_bars([]) == "(no rows)"


def test_table_alignment_and_floats():
    out = table(["name", "value"], [("x", 1.23456), ("longer", 2)])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", "+"}
    assert "1.235" in out  # .4g float formatting
    assert len(lines) == 4


def test_table_empty_rows():
    out = table(["a", "b"], [])
    assert "a" in out and "b" in out


def test_scaling_plot_shape():
    out = scaling_plot([8, 16, 32, 64], [0.5, 1.0, 0.8, 0.9], height=6, width=20)
    lines = out.splitlines()
    assert len(lines) == 7  # height rows + x-axis label line
    assert out.count("*") == 4
    assert "system size" in lines[-1]


def test_scaling_plot_validates():
    with pytest.raises(ValueError):
        scaling_plot([], [])
    with pytest.raises(ValueError):
        scaling_plot([1, 2], [1.0])


def test_heat_grid_layout():
    out = heat_grid(["t=1", "t=2"], ["p=1", "p=2"], [["a/1", "b/2"], ["--", "c/3"]])
    lines = out.splitlines()
    assert len(lines) == 3
    assert "p=1" in lines[0] and "p=2" in lines[0]
    assert lines[1].strip().startswith("t=1")
    assert "--" in lines[2]


def test_heat_grid_validates_shape():
    with pytest.raises(ValueError):
        heat_grid(["r"], ["c1", "c2"], [["only-one"]])
    with pytest.raises(ValueError):
        heat_grid(["r1", "r2"], ["c"], [["x"]])
