"""2-D tensor-parallelism tests (paper §6's multi-dimensional GEMM point)."""

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy, StrategyError
from repro.hardware import a100_system
from repro.llm import LLMConfig, build_block
from repro.llm.layers import Engine

LLM = LLMConfig(name="tp2d-llm", hidden=4096, attn_heads=64, seq_size=2048,
                num_blocks=16)


def test_2d_requires_square_degree():
    with pytest.raises(ValueError, match="square"):
        build_block(LLM, microbatch=1, tensor_par=8, tp_mode="2d")
    build_block(LLM, microbatch=1, tensor_par=16, tp_mode="2d")  # 4x4 ok


def test_2d_rejects_seq_par():
    with pytest.raises(ValueError, match="seq_par"):
        build_block(LLM, microbatch=1, tensor_par=16, tp_mode="2d", seq_par=True)


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="tp_mode"):
        build_block(LLM, microbatch=1, tensor_par=4, tp_mode="3d")


def test_2d_preserves_gemm_flops():
    one_d = build_block(LLM, microbatch=2, tensor_par=16, tp_mode="1d")
    two_d = build_block(LLM, microbatch=2, tensor_par=16, tp_mode="2d")
    f1 = sum(l.flops_fw for l in one_d.layers if l.engine is Engine.MATRIX)
    f2 = sum(l.flops_fw for l in two_d.layers if l.engine is Engine.MATRIX)
    assert f1 == pytest.approx(f2)


def test_2d_comm_schedule_shape():
    block = build_block(LLM, microbatch=1, tensor_par=16, tp_mode="2d")
    assert len(block.tp_comm_fw) == 8  # 4 GEMMs x (activation AG + weight AG)
    assert all(c.group == 4 for c in block.tp_comm_fw)  # sqrt(16) grid rows
    assert all(c.op == "all_gather" for c in block.tp_comm_fw)
    bsh_e = 1 * LLM.seq_size * LLM.hidden * 2
    # The first event gathers the QKV input row: bsh * e / grid.
    assert block.tp_comm_fw[0].nbytes == pytest.approx(bsh_e / 4)
    # The second gathers the QKV weight column: 3 h^2 e / grid.
    assert block.tp_comm_fw[1].nbytes == pytest.approx(3 * LLM.hidden**2 * 2 / 4)


def _ring_volume(comms, t):
    vol = 0.0
    for c in comms:
        g = c.group or t
        factor = 2 * (g - 1) / g if c.op == "all_reduce" else (g - 1) / g
        vol += factor * c.nbytes
    return vol


def test_2d_comm_volume_beats_1d_at_large_t():
    """The §6 claim: multi-dimensional distribution wins at large TP — with a
    big enough microbatch for activations to dominate the weight tiles."""
    t = 64  # 8x8 grid
    one_d = build_block(LLM, microbatch=16, tensor_par=t, tp_mode="1d")
    two_d = build_block(LLM, microbatch=16, tensor_par=t, tp_mode="2d")
    assert _ring_volume(two_d.tp_comm_fw, t) < _ring_volume(one_d.tp_comm_fw, t)


def test_1d_comm_volume_wins_at_small_t():
    """At a small grid, gathering weight tiles costs 2-D more than the
    activation saving — 1-D stays ahead (the paper's "TP up to 16" regime)."""
    t = 4  # 2x2 grid
    one_d = build_block(LLM, microbatch=1, tensor_par=t, tp_mode="1d")
    two_d = build_block(LLM, microbatch=1, tensor_par=t, tp_mode="2d")
    assert _ring_volume(one_d.tp_comm_fw, t) <= _ring_volume(two_d.tp_comm_fw, t)


def test_2d_shards_residual_stream():
    one_d = build_block(LLM, microbatch=1, tensor_par=16, tp_mode="1d")
    two_d = build_block(LLM, microbatch=1, tensor_par=16, tp_mode="2d")
    assert two_d.stash_bytes("none") < one_d.stash_bytes("none")
    assert two_d.pp_activation_bytes == pytest.approx(
        one_d.pp_activation_bytes / 16
    )


def test_strategy_validation_2d():
    sys64 = a100_system(64, hbm_gib=1_000_000)
    ok = ExecutionStrategy(tensor_par=16, pipeline_par=2, data_par=2, batch=16,
                           tp_mode="2d")
    ok.validate(LLM, sys64)
    with pytest.raises(StrategyError, match="square"):
        ExecutionStrategy(tensor_par=8, pipeline_par=4, data_par=2, batch=16,
                          tp_mode="2d").validate(LLM, sys64)
    with pytest.raises(StrategyError, match="seq_par"):
        ExecutionStrategy(tensor_par=16, pipeline_par=2, data_par=2, batch=16,
                          tp_mode="2d", seq_par=True).validate(LLM, sys64)
    with pytest.raises(StrategyError, match="tp_mode"):
        ExecutionStrategy(tensor_par=16, pipeline_par=2, data_par=2, batch=16,
                          tp_mode="3d").validate(LLM, sys64)


def test_model_end_to_end_with_2d():
    sys64 = a100_system(64, hbm_gib=1_000_000, nvlink_size=64)
    base = dict(pipeline_par=1, data_par=1, batch=8, microbatch=1,
                recompute="full")
    one_d = calculate(
        LLM, sys64, ExecutionStrategy(tensor_par=64, tp_mode="1d", **base)
    )
    two_d = calculate(
        LLM, sys64, ExecutionStrategy(tensor_par=64, tp_mode="2d", **base)
    )
    assert one_d.feasible and two_d.feasible
    # At t=64 the 2-D distribution spends less time in TP communication.
    assert two_d.time.tp_comm_total < one_d.time.tp_comm_total


def test_dict_roundtrip_includes_tp_mode():
    s = ExecutionStrategy(tensor_par=16, pipeline_par=1, data_par=1, batch=4,
                          tp_mode="2d")
    assert ExecutionStrategy.from_dict(s.to_dict()).tp_mode == "2d"
