"""Unit-helper tests."""

import pytest

from repro import units


def test_binary_prefixes_are_powers_of_1024():
    assert units.KiB == 1024
    assert units.MiB == 1024**2
    assert units.GiB == 1024**3
    assert units.TiB == 1024**4


def test_decimal_prefixes_are_powers_of_ten():
    assert units.GB == 10**9
    assert units.TB == 10**12
    assert units.TFLOPS == 10**12


def test_gib_conversion_roundtrip():
    assert units.gib(80 * units.GiB) == pytest.approx(80.0)
    assert units.tib(4 * units.TiB) == pytest.approx(4.0)


def test_gbps_and_tflops():
    assert units.gbps(100 * units.GB) == pytest.approx(100.0)
    assert units.tflops(312 * units.TFLOPS) == pytest.approx(312.0)


@pytest.mark.parametrize(
    "nbytes,expect",
    [
        (512, "512 B"),
        (2048, "2.00 KiB"),
        (17.4 * units.GiB, "17.40 GiB"),
        (4 * units.TiB, "4.00 TiB"),
    ],
)
def test_human_bytes(nbytes, expect):
    assert units.human_bytes(nbytes) == expect


def test_human_bytes_rejects_negative():
    with pytest.raises(ValueError):
        units.human_bytes(-1)


@pytest.mark.parametrize(
    "rate,expect",
    [
        (100 * units.GB, "100.00 GB/s"),
        (3 * units.TB, "3.00 TB/s"),
        (500, "500 B/s"),
    ],
)
def test_human_rate(rate, expect):
    assert units.human_rate(rate) == expect


def test_human_flops_zetta():
    assert units.human_flops(1.5 * units.ZETTA) == "1.50 ZFLOP"
    assert units.human_flops(312 * units.TFLOPS) == "312.00 TFLOP"


@pytest.mark.parametrize(
    "seconds,expect",
    [(16.7, "16.7 s"), (3.2e-3, "3.2 ms"), (450e-6, "450 us"), (5e-9, "5 ns")],
)
def test_human_time(seconds, expect):
    assert units.human_time(seconds) == expect


def test_human_time_rejects_negative():
    with pytest.raises(ValueError):
        units.human_time(-0.1)
