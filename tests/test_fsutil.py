"""Crash-safe write helpers (repro.fsutil), incl. the directory-fsync fix."""

import os

import pytest

from repro import fsutil
from repro.fsutil import atomic_write_text, fsync_dir


def test_atomic_write_roundtrip(tmp_path):
    path = tmp_path / "out.txt"
    assert atomic_write_text(path, "hello\n") == path
    assert path.read_text() == "hello\n"


def test_atomic_write_replaces_existing(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(path, "old")
    atomic_write_text(path, "new")
    assert path.read_text() == "new"
    # No temp files left behind.
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def test_atomic_write_fsyncs_parent_directory(tmp_path, monkeypatch):
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd)))
    atomic_write_text(tmp_path / "out.txt", "data")
    # One fsync for the temp file's data, one for the directory entry.
    assert len(synced) >= 2


def test_directory_fsync_failure_is_tolerated(tmp_path, monkeypatch):
    """On filesystems where directory fsync raises, the write still works."""
    real_fsync = os.fsync

    def picky_fsync(fd):
        import stat

        if stat.S_ISDIR(os.fstat(fd).st_mode):
            raise OSError(22, "directory fsync not supported here")
        return real_fsync(fd)

    monkeypatch.setattr(os, "fsync", picky_fsync)
    path = tmp_path / "out.txt"
    assert atomic_write_text(path, "survives") == path
    assert path.read_text() == "survives"
    assert fsync_dir(tmp_path) is False


def test_fsync_dir_reports_success(tmp_path):
    assert fsync_dir(tmp_path) is True


def test_fsync_dir_missing_directory(tmp_path):
    assert fsync_dir(tmp_path / "nope") is False


def test_failed_write_cleans_up_temp_file(tmp_path, monkeypatch):
    monkeypatch.setattr(
        fsutil.os, "replace", lambda a, b: (_ for _ in ()).throw(OSError("boom"))
    )
    with pytest.raises(OSError):
        atomic_write_text(tmp_path / "out.txt", "data")
    assert list(tmp_path.iterdir()) == []
