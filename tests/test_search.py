"""Execution-search engine tests (paper §5.1)."""

import pytest

from repro.core import calculate
from repro.hardware import a100_system, ddr5_offload
from repro.llm import LLMConfig, TINY_TEST
from repro.search import SearchOptions, auto_workers, candidate_strategies, search
from repro.search.execution_search import MIN_STRATEGIES_PER_WORKER

LLM = LLMConfig(name="search-llm", hidden=2048, attn_heads=16, seq_size=1024,
                num_blocks=16)
SYS = a100_system(16)


def small_options(**kw):
    base = dict(
        recompute=("full",),
        seq_par_modes=((False, False, False),),
        tp_overlap=("none",),
        dp_overlap=(False,),
        optimizer_sharding=(False,),
        fused_activations=(False,),
        max_microbatch=4,
    )
    base.update(kw)
    return SearchOptions(**base)


def test_candidates_cover_all_factorizations():
    opts = small_options()
    cands = list(candidate_strategies(LLM, SYS, 16, opts))
    triples = {(c.tensor_par, c.pipeline_par, c.data_par) for c in cands}
    assert all(t * p * d == 16 for t, p, d in triples)
    assert (16, 1, 1) in triples
    assert (1, 16, 1) in triples
    assert (1, 1, 16) in triples


def test_candidates_respect_max_tensor_par():
    opts = small_options(max_tensor_par=4)
    cands = list(candidate_strategies(LLM, SYS, 16, opts))
    assert all(c.tensor_par <= 4 for c in cands)


def test_candidates_prune_structural_violations():
    # heads=16 -> t=16 allowed but t must divide hidden/ff too; all satisfied
    # here, so prune only p > blocks and bad batch splits.
    opts = small_options()
    cands = list(candidate_strategies(LLM, SYS, 16, opts))
    assert all(c.pipeline_par <= LLM.num_blocks for c in cands)
    assert all(c.batch % c.data_par == 0 for c in cands)


def test_all_candidates_pass_static_validation():
    opts = small_options()
    for cand in candidate_strategies(LLM, SYS, 16, opts):
        cand.validate(LLM, SYS)  # must not raise


def test_search_returns_best_by_sample_rate():
    opts = small_options()
    res = search(LLM, SYS, 16, opts, workers=0)
    assert res.best is not None
    assert res.num_feasible > 0
    assert res.num_evaluated >= res.num_feasible
    # best is at least as fast as every retained configuration
    assert all(res.best.sample_rate >= r.sample_rate for _, r in res.top)


def test_search_best_matches_direct_evaluation():
    opts = small_options()
    res = search(LLM, SYS, 16, opts, workers=0)
    direct = calculate(LLM, SYS, res.best_strategy)
    assert direct.sample_rate == pytest.approx(res.best.sample_rate)


def test_search_rates_array_has_feasible_length():
    opts = small_options()
    res = search(LLM, SYS, 16, opts, workers=0, keep_rates=True)
    assert len(res.sample_rates) == res.num_feasible
    assert res.feasible_fraction <= 1.0


def test_search_top_k_limits_results():
    opts = small_options()
    res = search(LLM, SYS, 16, opts, workers=0, top_k=3)
    assert len(res.top) <= 3
    rates = [r.sample_rate for _, r in res.top]
    assert rates == sorted(rates, reverse=True)


def test_wider_options_never_hurt_best():
    narrow = search(LLM, SYS, 16, small_options(), workers=0)
    wide = search(
        LLM,
        SYS,
        16,
        small_options(
            recompute=("none", "attn_only", "full"),
            optimizer_sharding=(False, True),
            seq_par_modes=((False, False, False), (True, True, True)),
        ),
        workers=0,
    )
    assert wide.best.sample_rate >= narrow.best.sample_rate - 1e-9


def test_offload_modes_require_tier2_to_be_feasible():
    opts = small_options(offload_modes=((True, True, True),))
    res = search(LLM, SYS, 16, opts, workers=0)
    assert res.num_feasible == 0  # no tier-2 memory on SYS
    sys_off = a100_system(16, offload=ddr5_offload(4096))
    res2 = search(LLM, sys_off, 16, opts, workers=0)
    assert res2.num_feasible > 0


def test_parallel_search_matches_serial():
    opts = small_options()
    serial = search(LLM, SYS, 16, opts, workers=0)
    parallel = search(LLM, SYS, 16, opts, workers=2)
    assert parallel.num_evaluated == serial.num_evaluated
    assert parallel.num_feasible == serial.num_feasible
    assert parallel.best.sample_rate == pytest.approx(serial.best.sample_rate)


def test_preset_option_regimes_nest():
    base = SearchOptions.megatron_baseline()
    assert base.recompute == ("full",)
    sp = SearchOptions.seq_par_regime()
    assert (True, True, True) in sp.seq_par_modes
    full = SearchOptions.all_optimizations()
    assert len(full.recompute) == 3
    off = SearchOptions.all_with_offload()
    assert (True, True, True) in off.offload_modes


def test_no_feasible_configuration_handled():
    # One tiny processor cannot hold the model: search reports it gracefully.
    tiny_sys = a100_system(1, hbm_gib=0.001)
    res = search(TINY_TEST, tiny_sys, 4, small_options(), workers=0)
    assert res.best is None
    assert res.num_feasible == 0


def test_interleaving_values_override():
    opts = small_options(interleaving_values=(1, 2))
    cands = list(candidate_strategies(LLM, SYS, 16, opts))
    assert {c.pp_interleaving for c in cands} <= {1, 2}


def test_training_flag_propagates():
    opts = small_options(recompute=("none",), training=False)
    cands = list(candidate_strategies(LLM, SYS, 16, opts))
    assert cands and all(not c.training for c in cands)


def _max_40gib(res):
    return res.mem1.total <= 40 * 2**30


def test_constraint_filters_results():
    opts = small_options(recompute=("none", "attn_only", "full"))
    free = search(LLM, SYS, 16, opts, workers=0)
    constrained = search(LLM, SYS, 16, opts, workers=0, constraint=_max_40gib)
    assert constrained.num_feasible <= free.num_feasible
    for _, r in constrained.top:
        assert r.mem1.total <= 40 * 2**30


def test_constraint_works_in_parallel_mode():
    opts = small_options(recompute=("none", "attn_only", "full"))
    serial = search(LLM, SYS, 16, opts, workers=0, constraint=_max_40gib)
    parallel = search(LLM, SYS, 16, opts, workers=2, constraint=_max_40gib)
    assert parallel.num_feasible == serial.num_feasible


def test_impossible_constraint_empties_search():
    opts = small_options()
    res = search(LLM, SYS, 16, opts, workers=0,
                 constraint=lambda r: r.mfu > 0.999)
    assert res.best is None
    assert res.num_feasible == 0


def test_auto_workers_stays_serial_for_small_sweeps():
    assert auto_workers(0, cpu_count=64) == 1
    assert auto_workers(MIN_STRATEGIES_PER_WORKER - 1, cpu_count=64) == 1


def test_auto_workers_scales_with_candidates_and_caps_at_cores():
    per = MIN_STRATEGIES_PER_WORKER
    assert auto_workers(2 * per, cpu_count=64) == 2
    assert auto_workers(10 * per, cpu_count=64) == 10
    assert auto_workers(10_000 * per, cpu_count=8) == 8  # core-count cap
    assert auto_workers(10 * per, cpu_count=1) == 1


def test_search_workers_none_matches_explicit_serial():
    opts = small_options()
    auto = search(LLM, SYS, 16, opts, workers=None)
    serial = search(LLM, SYS, 16, opts, workers=0)
    assert auto.num_evaluated == serial.num_evaluated
    assert auto.num_feasible == serial.num_feasible
    assert auto.best.sample_rate == serial.best.sample_rate


def test_top_k_heap_matches_brute_force_ranking():
    opts = small_options(recompute=("none", "attn_only", "full"),
                         optimizer_sharding=(False, True))
    cands = list(candidate_strategies(LLM, SYS, 16, opts))
    brute = sorted(
        (r.sample_rate for r in (calculate(LLM, SYS, c) for c in cands)
         if r.feasible),
        reverse=True,
    )
    for top_k in (1, 5, len(brute) + 10):
        res = search(LLM, SYS, 16, opts, workers=0, top_k=top_k)
        got = [r.sample_rate for _, r in res.top]
        assert got == brute[:top_k]
