"""Hypothesis invariants for both serving simulators.

Covers the legacy single-queue model (``repro.inference.batching``) and
the deployment simulator (``repro.serving``): fixed-seed determinism,
monotone latency in offered load, KV byte conservation, and percentile
ordering — the properties docs/SERVING.md promises.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.system import h100_system
from repro.inference import InferenceStrategy
from repro.inference.batching import ServingWorkload, simulate_serving
from repro.llm.config import TINY_TEST
from repro.serving import LengthDist, ServeWorkload, simulate_serve

SYS = h100_system(4, hbm_gib=8.0)
STRAT = InferenceStrategy(tensor_par=2, pipeline_par=1, data_par=2, batch=1)

rates = st.floats(min_value=0.5, max_value=200.0,
                  allow_nan=False, allow_infinity=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _serve(rate, seed, n=30):
    wl = ServeWorkload(
        arrival_rate=rate, prompt=LengthDist.uniform(32, 96),
        output=LengthDist.uniform(8, 24), num_requests=n, seed=seed,
    )
    return simulate_serve(TINY_TEST, SYS, STRAT, wl)


# -- legacy single-queue simulator (repro.inference.batching) -----------------

@settings(max_examples=15, deadline=None)
@given(rate=rates, seed=seeds)
def test_batching_fixed_seed_determinism(rate, seed):
    wl = ServingWorkload(arrival_rate=rate, prompt_len=128, generate_len=16,
                         num_requests=25, seed=seed)
    a = simulate_serving(TINY_TEST, SYS, STRAT, wl)
    b = simulate_serving(TINY_TEST, SYS, STRAT, wl)
    assert a.mean_latency == b.mean_latency
    assert a.p95_latency == b.p95_latency
    assert a.duration == b.duration


@settings(max_examples=10, deadline=None)
@given(rate=st.floats(min_value=1.0, max_value=50.0), seed=seeds)
def test_batching_latency_monotone_in_rate(rate, seed):
    """More offered load never improves mean latency (same gap draws)."""
    def run(r):
        wl = ServingWorkload(arrival_rate=r, prompt_len=128, generate_len=16,
                             num_requests=25, seed=seed)
        return simulate_serving(TINY_TEST, SYS, STRAT, wl)

    slow, fast = run(rate), run(rate * 4.0)
    assert fast.mean_latency >= slow.mean_latency * (1.0 - 1e-9)


# -- deployment simulator (repro.serving) -------------------------------------

@settings(max_examples=15, deadline=None)
@given(rate=rates, seed=seeds)
def test_serve_fixed_seed_determinism(rate, seed):
    assert _serve(rate, seed) == _serve(rate, seed)


@settings(max_examples=15, deadline=None)
@given(rate=rates, seed=seeds)
def test_serve_kv_bytes_conserved(rate, seed):
    stats = _serve(rate, seed)
    assert stats.kv_allocated_bytes == stats.kv_freed_bytes
    assert stats.kv_peak_bytes <= stats.kv_allocated_bytes


@settings(max_examples=15, deadline=None)
@given(rate=rates, seed=seeds)
def test_serve_percentiles_ordered(rate, seed):
    stats = _serve(rate, seed)
    assert stats.ttft_p50 <= stats.ttft_p95 <= stats.ttft_p99
    assert stats.tpot_p50 <= stats.tpot_p95 <= stats.tpot_p99


@settings(max_examples=10, deadline=None)
@given(rate=st.floats(min_value=1.0, max_value=50.0), seed=seeds)
def test_serve_ttft_monotone_in_rate(rate, seed):
    """Scaling every interarrival gap down never improves p95 TTFT.

    The workload sampler reuses the same exponential draws across rates,
    so the faster run sees the same requests, closer together — each
    request's wait can only grow.
    """
    slow = _serve(rate, seed)
    fast = _serve(rate * 4.0, seed)
    assert fast.ttft_p95 >= slow.ttft_p95 * (1.0 - 1e-9)
