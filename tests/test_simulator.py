"""Pipeline-schedule simulator tests and analytical cross-validation (Fig. 2)."""

import pytest

from repro.simulator import (
    PipelineParams,
    analytical_bubble,
    simulate,
)


def test_single_stage_has_no_bubble():
    stats = simulate(PipelineParams(num_stages=1, num_microbatches=8))
    assert stats.bubble_time == pytest.approx(0.0)
    assert stats.makespan == pytest.approx(8 * (1.0 + 2.0))


def test_makespan_lower_bound_is_busy_time():
    params = PipelineParams(num_stages=4, num_microbatches=8)
    stats = simulate(params)
    assert stats.makespan >= max(stats.device_busy)


def test_every_device_does_equal_work():
    params = PipelineParams(num_stages=4, num_microbatches=8, interleaving=2)
    stats = simulate(params)
    assert max(stats.device_busy) == pytest.approx(min(stats.device_busy))


@pytest.mark.parametrize("p,M", [(2, 4), (4, 8), (4, 16), (8, 16)])
def test_noninterleaved_bubble_matches_closed_form(p, M):
    params = PipelineParams(num_stages=p, num_microbatches=M)
    stats = simulate(params)
    expected = analytical_bubble(params)
    assert stats.bubble_time == pytest.approx(expected, rel=0.25)


@pytest.mark.parametrize("p,v,M", [(2, 2, 8), (4, 2, 8), (4, 4, 16)])
def test_interleaved_bubble_shrinks_roughly_by_v(p, v, M):
    # With interleaving the per-chunk work is 1/v of the stage, so the
    # simulated bubble should be well below the non-interleaved one.
    plain = simulate(
        PipelineParams(num_stages=p, num_microbatches=M, fw_time=1.0, bw_time=2.0)
    )
    inter = simulate(
        PipelineParams(
            num_stages=p,
            num_microbatches=M,
            interleaving=v,
            fw_time=1.0 / v,
            bw_time=2.0 / v,
        )
    )
    assert inter.bubble_time < plain.bubble_time
    # Same useful work in both cases.
    assert inter.busy_time == pytest.approx(plain.busy_time)


def test_bubble_fraction_decreases_with_more_microbatches():
    f4 = simulate(PipelineParams(num_stages=4, num_microbatches=4)).bubble_fraction
    f32 = simulate(PipelineParams(num_stages=4, num_microbatches=32)).bubble_fraction
    assert f32 < f4


def test_p2p_time_lengthens_makespan():
    fast = simulate(PipelineParams(num_stages=4, num_microbatches=8))
    slow = simulate(PipelineParams(num_stages=4, num_microbatches=8, p2p_time=0.5))
    assert slow.makespan > fast.makespan


def test_param_validation():
    with pytest.raises(ValueError):
        PipelineParams(num_stages=0, num_microbatches=1)
    with pytest.raises(ValueError):
        PipelineParams(num_stages=1, num_microbatches=1, fw_time=-1)


def test_makespan_formula_ideal_pipeline():
    # Ideal 1F1B: makespan = (M + p - 1) * (tf + tb) for equal chunk times.
    p, M = 4, 16
    stats = simulate(PipelineParams(num_stages=p, num_microbatches=M, fw_time=1.0,
                                    bw_time=1.0))
    assert stats.makespan <= (M + p - 1) * 2.0 * 1.3  # within 30% of ideal
