"""Serving-deployment search tests."""

from repro.hardware import a100_system
from repro.inference import candidate_deployments, search_deployments
from repro.llm import LLMConfig

LLM = LLMConfig(name="dep-llm", hidden=4096, attn_heads=32, seq_size=2048,
                num_blocks=32)
SYS = a100_system(8)


def test_candidates_cover_the_pool():
    cands = list(candidate_deployments(LLM, SYS, batches=(1, 4)))
    shapes = {(c.tensor_par, c.pipeline_par, c.data_par) for c in cands}
    assert all(t * p * d == 8 for t, p, d in shapes)
    assert (8, 1, 1) in shapes
    assert (1, 1, 8) in shapes
    assert {c.batch for c in cands} == {1, 4}


def test_candidates_respect_model_shape():
    narrow = LLMConfig(name="narrow", hidden=4096, attn_heads=4, seq_size=512,
                       num_blocks=4)
    cands = list(candidate_deployments(narrow, SYS, batches=(1,)))
    assert all(c.tensor_par <= 4 for c in cands)
    assert all(c.pipeline_par <= 4 for c in cands)


def test_front_is_nonempty_and_sorted_by_latency():
    front = search_deployments(LLM, SYS, prompt_len=512, generate_len=64,
                               batches=(1, 4, 16))
    assert front
    lats = [p.result.decode_step_time for p in front]
    assert lats == sorted(lats)


def test_front_trades_latency_for_throughput():
    front = search_deployments(LLM, SYS, prompt_len=512, generate_len=64,
                               batches=(1, 4, 16, 64))
    if len(front) > 1:
        # Moving down the front, throughput must increase (else dominated).
        thr = [p.result.tokens_per_second for p in front]
        assert thr == sorted(thr)


def test_front_members_are_feasible():
    front = search_deployments(LLM, SYS, prompt_len=512, generate_len=64)
    for point in front:
        assert point.result.feasible
        assert point.tokens_per_second_per_proc > 0


def test_nothing_fits_returns_empty():
    from repro.llm import MEGATRON_1T

    tiny = a100_system(2)
    assert search_deployments(MEGATRON_1T, tiny, prompt_len=128,
                              generate_len=16) == []
