"""Serving workload / SLO spec tests: parsing, round-trips, validation."""

import numpy as np
import pytest

from repro.serving import LengthDist, ServeWorkload, SLOSpec


# -- LengthDist ---------------------------------------------------------------

def test_parse_fixed_and_uniform():
    assert LengthDist.parse("2048") == LengthDist.fixed(2048)
    assert LengthDist.parse("128:4096") == LengthDist.uniform(128, 4096)
    assert LengthDist.parse(" 64 ") == LengthDist.fixed(64)


def test_min_max_len():
    assert LengthDist.fixed(100).min_len == LengthDist.fixed(100).max_len == 100
    u = LengthDist.uniform(2, 9)
    assert (u.min_len, u.max_len) == (2, 9)


def test_validation():
    with pytest.raises(ValueError):
        LengthDist(kind="gaussian")
    with pytest.raises(ValueError):
        LengthDist.fixed(0)
    with pytest.raises(ValueError):
        LengthDist.uniform(5, 2)
    with pytest.raises(ValueError):
        LengthDist.uniform(0, 2)


def test_roundtrip():
    for dist in (LengthDist.fixed(777), LengthDist.uniform(3, 44)):
        assert LengthDist.from_dict(dist.to_dict()) == dist


def test_sample_bounds_and_determinism():
    dist = LengthDist.uniform(10, 20)
    a = dist.sample(np.random.default_rng(0), 100)
    b = dist.sample(np.random.default_rng(0), 100)
    assert (a == b).all()
    assert a.min() >= 10 and a.max() <= 20
    fixed = LengthDist.fixed(7).sample(np.random.default_rng(0), 5)
    assert (fixed == 7).all()


def test_short_name():
    assert LengthDist.fixed(512).short_name() == "512"
    assert LengthDist.uniform(1, 9).short_name() == "1:9"


# -- ServeWorkload ------------------------------------------------------------

def test_workload_sample_deterministic():
    wl = ServeWorkload(arrival_rate=5.0, num_requests=50, seed=3)
    a1, p1, o1 = wl.sample()
    a2, p2, o2 = wl.sample()
    assert (a1 == a2).all() and (p1 == p2).all() and (o1 == o2).all()
    assert (np.diff(a1) >= 0).all()  # arrivals are cumulative


def test_workload_rate_scales_same_draws():
    """Doubling the rate halves every interarrival gap exactly."""
    slow = ServeWorkload(arrival_rate=2.0, num_requests=40, seed=9)
    fast = ServeWorkload(arrival_rate=4.0, num_requests=40, seed=9)
    a_slow, p_slow, _ = slow.sample()
    a_fast, p_fast, _ = fast.sample()
    assert np.allclose(a_slow, 2.0 * a_fast)
    assert (p_slow == p_fast).all()  # lengths untouched by the rate


def test_workload_validation_and_roundtrip():
    with pytest.raises(ValueError):
        ServeWorkload(arrival_rate=0.0)
    with pytest.raises(ValueError):
        ServeWorkload(arrival_rate=1.0, num_requests=0)
    wl = ServeWorkload(
        arrival_rate=3.5, prompt=LengthDist.uniform(8, 16),
        output=LengthDist.fixed(4), num_requests=17, seed=2,
    )
    assert ServeWorkload.from_dict(wl.to_dict()) == wl
    assert wl.max_context == 16 + 4


# -- SLOSpec ------------------------------------------------------------------

class _Stats:
    ttft_p50 = 0.5
    ttft_p95 = 1.0
    ttft_p99 = 2.0
    tpot_p95 = 0.05


def test_slo_constrained_and_violations():
    assert not SLOSpec().constrained
    slo = SLOSpec(ttft_p95=0.8, tpot_p95=0.1)
    assert slo.constrained
    violations = slo.violations(_Stats())
    assert len(violations) == 1 and "ttft_p95" in violations[0]
    assert not slo.satisfied(_Stats())
    assert SLOSpec(ttft_p95=1.0, tpot_p95=0.05).satisfied(_Stats())


def test_slo_request_is_good_uses_p95_deadlines():
    slo = SLOSpec(ttft_p95=1.0, tpot_p95=0.1)
    assert slo.request_is_good(0.9, 0.05)
    assert not slo.request_is_good(1.1, 0.05)
    assert not slo.request_is_good(0.9, 0.2)
    assert SLOSpec(ttft_p50=1.0).request_is_good(99.0, 99.0)  # p50 not a deadline


def test_slo_validation_roundtrip_short_name():
    with pytest.raises(ValueError):
        SLOSpec(ttft_p95=-1.0)
    slo = SLOSpec(ttft_p50=0.2, ttft_p99=2.0)
    assert SLOSpec.from_dict(slo.to_dict()) == slo
    assert SLOSpec.from_dict({}) == SLOSpec()
    assert SLOSpec().short_name() == "unconstrained"
    assert "ttft_p99<=2s" in slo.short_name()
