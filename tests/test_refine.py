"""Hill-climbing refinement tests: correctness vs the exhaustive engine."""

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import LLMConfig
from repro.search import SearchOptions, search
from repro.search.refine import hill_climb, multi_start, neighbours

LLM = LLMConfig(name="refine-llm", hidden=2048, attn_heads=16, seq_size=1024,
                num_blocks=16)
SYS = a100_system(16)
BATCH = 32


def seed(**kw):
    base = dict(tensor_par=4, pipeline_par=4, data_par=1, batch=BATCH,
                microbatch=1, recompute="full")
    base.update(kw)
    return ExecutionStrategy(**base)


def test_neighbours_preserve_processor_count():
    for n in neighbours(seed()):
        assert n.num_procs == 16


def test_neighbours_cover_all_dimensions():
    ns = neighbours(seed())
    assert any(n.tensor_par != 4 for n in ns)
    assert any(n.microbatch == 2 for n in ns)
    assert any(n.optimizer_sharding for n in ns)
    assert any(n.seq_par for n in ns)
    assert any(n.recompute == "attn_only" for n in ns)
    assert any(n.tp_overlap == "pipe" for n in ns)


def test_hill_climb_never_worse_than_seed():
    s = seed()
    start = calculate(LLM, SYS, s)
    result = hill_climb(LLM, SYS, s)
    assert result is not None
    assert result.best.sample_rate >= start.sample_rate


def test_hill_climb_terminates_at_local_optimum():
    result = hill_climb(LLM, SYS, seed())
    assert result is not None
    # No neighbour of the returned strategy improves on it.
    best_rate = result.best.sample_rate
    for cand in neighbours(result.best_strategy):
        res = calculate(LLM, SYS, cand)
        if res.feasible:
            assert res.sample_rate <= best_rate + 1e-9


def test_hill_climb_bootstraps_from_infeasible_seed():
    bad = seed(data_par=1, microbatch=32, recompute="none")  # act-memory heavy
    result = hill_climb(LLM, SYS, bad)
    assert result is not None
    assert result.best.feasible


def test_hill_climb_returns_none_when_hopeless():
    tiny = a100_system(16, hbm_gib=0.0001)
    assert hill_climb(LLM, tiny, seed()) is None


def test_max_steps_validated():
    with pytest.raises(ValueError):
        hill_climb(LLM, SYS, seed(), max_steps=0)


def test_multi_start_close_to_exhaustive():
    exhaustive = search(
        LLM, SYS, BATCH, SearchOptions(max_microbatch=8), workers=0, top_k=1
    )
    seeds = [
        seed(),
        seed(tensor_par=1, pipeline_par=1, data_par=16),
        seed(tensor_par=16, pipeline_par=1, data_par=1),
        seed(tensor_par=2, pipeline_par=8, data_par=1, recompute="none"),
    ]
    refined = multi_start(LLM, SYS, seeds)
    assert refined is not None
    # Within 10% of the exhaustive optimum at a fraction of the evaluations.
    assert refined.best.sample_rate >= 0.90 * exhaustive.best.sample_rate
    assert refined.evaluations < exhaustive.num_evaluated


def test_multi_start_handles_all_infeasible():
    tiny = a100_system(16, hbm_gib=0.0001)
    assert multi_start(LLM, tiny, [seed()]) is None
