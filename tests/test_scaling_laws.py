"""Model-family generation and Chinchilla-budget tests."""

import pytest

from repro.llm.scaling_laws import (
    TOKENS_PER_PARAMETER,
    chinchilla_tokens,
    make_config,
    model_ladder,
)


def test_chinchilla_ratio():
    assert chinchilla_tokens(70e9) == pytest.approx(1.4e12)
    assert chinchilla_tokens(1e9) == pytest.approx(TOKENS_PER_PARAMETER * 1e9)
    with pytest.raises(ValueError):
        chinchilla_tokens(0)


@pytest.mark.parametrize("target", [1e9, 7e9, 70e9, 175e9, 530e9, 1e12])
def test_make_config_hits_target(target):
    cfg = make_config(target)
    assert cfg.total_parameters == pytest.approx(target, rel=0.10)


def test_make_config_shape_is_tp_friendly():
    cfg = make_config(70e9)
    assert cfg.hidden % cfg.attn_heads == 0
    assert cfg.attn_size == 128
    # Every power-of-two TP degree up to the head count divides the shape.
    t = 1
    while t <= cfg.attn_heads:
        if (cfg.attn_heads & (cfg.attn_heads - 1)) == 0:
            assert cfg.attn_heads % t == 0
        t *= 2


def test_make_config_matches_published_shapes_approximately():
    cfg = make_config(175e9)
    assert 10000 <= cfg.hidden <= 14500  # GPT-3 uses 12288
    assert 70 <= cfg.num_blocks <= 130  # GPT-3 uses 96


def test_make_config_custom_name_and_seq():
    cfg = make_config(10e9, seq_size=4096, name="mine")
    assert cfg.name == "mine"
    assert cfg.seq_size == 4096


def test_make_config_validation():
    with pytest.raises(ValueError):
        make_config(0)
    with pytest.raises(ValueError):
        make_config(1e9, head_size=0)


def test_ladder_is_geometric_and_monotone():
    ladder = model_ladder(1e9, 1e12, steps=4)
    sizes = [c.total_parameters for c in ladder]
    assert sizes == sorted(sizes)
    assert sizes[0] == pytest.approx(1e9, rel=0.15)
    assert sizes[-1] == pytest.approx(1e12, rel=0.15)
    # Successive ratios are roughly constant.
    ratios = [b / a for a, b in zip(sizes, sizes[1:])]
    assert max(ratios) / min(ratios) < 1.6


def test_ladder_validation():
    with pytest.raises(ValueError):
        model_ladder(1e9, 1e12, steps=1)
    with pytest.raises(ValueError):
        model_ladder(1e12, 1e9)


def test_ladder_configs_are_usable_by_the_model():
    from repro.core import calculate
    from repro.execution import ExecutionStrategy
    from repro.hardware import a100_system

    cfg = make_config(3e9)
    res = calculate(
        cfg,
        a100_system(8, hbm_gib=1_000_000),
        ExecutionStrategy(tensor_par=8, pipeline_par=1, data_par=1, batch=8,
                          recompute="full"),
    )
    assert res.feasible
