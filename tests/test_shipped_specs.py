"""The shipped spec files under specs/ load and evaluate cleanly."""

from pathlib import Path

import pytest

from repro.core import calculate
from repro.io import load_llm, load_strategy, load_system
from repro.llm import get_preset

SPECS = Path(__file__).resolve().parent.parent / "specs"


def spec_files(kind: str):
    return sorted((SPECS / kind).glob("*.json"))


def test_spec_tree_exists():
    assert spec_files("llms"), "specs/llms is empty"
    assert spec_files("systems"), "specs/systems is empty"
    assert spec_files("executions"), "specs/executions is empty"


@pytest.mark.parametrize("path", spec_files("llms"), ids=lambda p: p.stem)
def test_llm_specs_match_presets(path):
    llm = load_llm(path)
    assert llm == get_preset(path.stem)


@pytest.mark.parametrize("path", spec_files("systems"), ids=lambda p: p.stem)
def test_system_specs_load(path):
    system = load_system(path)
    assert system.num_procs >= 1
    assert system.mem1.capacity > 0
    assert system.networks


@pytest.mark.parametrize("path", spec_files("executions"), ids=lambda p: p.stem)
def test_execution_specs_load(path):
    strat = load_strategy(path)
    assert strat.num_procs == 4096


def test_fig3_spec_reproduces_fig3():
    llm = load_llm(SPECS / "llms" / "gpt3-175b.json")
    system = load_system(SPECS / "systems" / "a100-80g-x4096.json")
    strat = load_strategy(SPECS / "executions" / "fig3-gpt3-175b.json")
    res = calculate(llm, system, strat)
    assert res.feasible
    assert 10 < res.batch_time < 30


def test_table4_offload_spec_runs_on_offload_system():
    llm = load_llm(SPECS / "llms" / "megatron-1t.json")
    system = load_system(SPECS / "systems" / "a100-80g-ddr512-x4096.json")
    strat = load_strategy(SPECS / "executions" / "table4-calculon-sw-offload.json")
    res = calculate(llm, system, strat)
    assert res.feasible
    assert res.mem1.total < 30 * 2**30  # the offload strategy's small HBM use
