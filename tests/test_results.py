"""Result-structure tests (paper §2.4 outputs)."""

import pytest

from repro.core import (
    MemoryBreakdown,
    OffloadStats,
    PerformanceResult,
    TimeBreakdown,
)


def test_batch_time_sums_exposed_components():
    t = TimeBreakdown(
        fw_pass=1.0,
        bw_pass=2.0,
        fw_recompute=0.5,
        optim_step=0.1,
        pp_bubble=0.3,
        tp_comm_exposed=0.2,
        pp_comm_exposed=0.1,
        dp_comm_exposed=0.1,
        offload_exposed=0.05,
        overlap_tax=0.02,
        tp_comm_total=0.5,
    )
    assert t.batch_time == pytest.approx(4.37)


def test_totals_do_not_count_toward_batch_time():
    lo = TimeBreakdown(fw_pass=1.0, tp_comm_total=0.0)
    hi = TimeBreakdown(fw_pass=1.0, tp_comm_total=99.0)
    assert lo.batch_time == hi.batch_time


def test_time_breakdown_rejects_negative():
    with pytest.raises(ValueError):
        TimeBreakdown(fw_pass=-1.0)


def test_memory_total():
    m = MemoryBreakdown(
        weight=10, activation=20, weight_grad=10, activation_grad=5, optimizer=55
    )
    assert m.total == 100


def test_memory_rejects_negative():
    with pytest.raises(ValueError):
        MemoryBreakdown(weight=-1)


def test_stacked_labels_match_figure3():
    labels = [name for name, _ in TimeBreakdown().stacked()]
    assert labels[:8] == [
        "FW pass",
        "BW pass",
        "Optim step",
        "PP bubble",
        "FW recompute",
        "TP comm",
        "PP comm",
        "DP comm",
    ]
    mem_labels = [name for name, _ in MemoryBreakdown().stacked()]
    assert mem_labels == [
        "Weight",
        "Activation",
        "Weight gradients",
        "Activation gradients",
        "Optimizer space",
    ]


def test_offload_stats_validation():
    with pytest.raises(ValueError):
        OffloadStats(used_bytes=-1)
    OffloadStats(used_bytes=0, required_bandwidth=0)


def test_infeasible_constructor():
    res = PerformanceResult.infeasible("llm", "sys", "cfg", 64, "because")
    assert not res.feasible
    assert res.sample_rate == 0.0
    assert res.infeasibility == "because"


def test_sample_rate():
    res = PerformanceResult(
        llm_name="l",
        system_name="s",
        strategy_name="c",
        batch=100,
        time=TimeBreakdown(fw_pass=4.0),
        mem1=MemoryBreakdown(weight=1),
        offload=OffloadStats(),
        mfu=0.5,
    )
    assert res.sample_rate == pytest.approx(25.0)


def test_as_dict_round():
    t = TimeBreakdown(fw_pass=1.0, bw_pass=2.0)
    d = t.as_dict()
    assert d["fw_pass"] == 1.0
    assert TimeBreakdown(**d) == t
