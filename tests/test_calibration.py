"""Calibration-tooling tests: recover known knobs from synthetic measurements."""

import pytest

from repro.analysis.calibration import (
    CalibrationResult,
    MeasuredRun,
    _apply_knobs,
    calibrate,
)
from repro.core import calculate
from repro.core import model as _model
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import LLMConfig

LLM = LLMConfig(name="cal-llm", hidden=2048, attn_heads=16, seq_size=1024,
                num_blocks=8)
SYS = a100_system(8, hbm_gib=1_000_000)


def strat(**kw):
    base = dict(tensor_par=8, pipeline_par=1, data_par=1, batch=8,
                microbatch=1, recompute="full")
    base.update(kw)
    return ExecutionStrategy(**base)


def synthetic_runs(plateau, hbm_eff, strategies):
    """Generate 'measured' times from a system with known knobs."""
    runs = []
    for s in strategies:
        _model._profile_block.cache_clear()
        sys_ = _apply_knobs(SYS, plateau, hbm_eff)
        t = calculate(LLM, sys_, s).batch_time
        runs.append(MeasuredRun(llm=LLM, system=SYS, strategy=s, measured_time=t))
    _model._profile_block.cache_clear()
    return runs


def test_apply_knobs_scales_plateau():
    sys_ = _apply_knobs(SYS, 0.5, 0.7)
    top = sys_.processor.matrix_efficiency.points[-1][1]
    assert top == pytest.approx(0.5)
    assert sys_.mem1.efficiency == pytest.approx(0.7)


def test_apply_knobs_caps_at_one():
    sys_ = _apply_knobs(SYS, 1.0, 1.0)
    for _, e in sys_.processor.matrix_efficiency.points:
        assert e <= 1.0


def test_measured_run_validation():
    with pytest.raises(ValueError):
        MeasuredRun(llm=LLM, system=SYS, strategy=strat(), measured_time=0.0)


def test_calibrate_requires_runs():
    with pytest.raises(ValueError):
        calibrate([])


def test_calibrate_recovers_known_knobs():
    target_p, target_h = 0.7, 0.6
    strategies = [
        strat(),
        strat(microbatch=2),
        strat(recompute="none"),
        strat(tensor_par=4, pipeline_par=2),
    ]
    runs = synthetic_runs(target_p, target_h, strategies)
    result = calibrate(runs)
    # The fitted model reproduces the synthetic measurements tightly...
    assert result.mean_abs_error < 0.03
    # ...and the dominant knob (matrix plateau) is recovered closely.
    assert result.matrix_plateau == pytest.approx(target_p, abs=0.08)


def test_calibrate_reports_errors_and_predictions():
    runs = synthetic_runs(0.8, 0.6, [strat(), strat(microbatch=2)])
    result = calibrate(runs)
    assert isinstance(result, CalibrationResult)
    assert len(result.predictions) == 2
    assert result.max_abs_error >= result.mean_abs_error


def test_calibrate_with_custom_grids():
    runs = synthetic_runs(0.6, 0.6, [strat()])
    result = calibrate(runs, plateau_grid=[0.5, 0.6, 0.7], hbm_grid=[0.5, 0.6])
    assert 0.45 <= result.matrix_plateau <= 0.75
    assert result.mean_abs_error < 0.10
