"""Integration tests of the core analytical model (paper §2.4)."""

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system, ddr5_offload, h100_system
from repro.llm import GPT3_175B, TINY_TEST, LLMConfig
from repro.units import GiB

SYS64 = a100_system(64)
# Capacity-unconstrained variant: behaviour tests should not be gated by the
# 80 GiB HBM limit (large-batch no-recompute runs legitimately exceed it).
BIG64 = a100_system(64, hbm_gib=1_000_000)


def run(llm=GPT3_175B, system=BIG64, **kw):
    base = dict(tensor_par=8, pipeline_par=8, data_par=1, batch=64, microbatch=1)
    base.update(kw)
    return calculate(llm, system, ExecutionStrategy(**base))


def test_feasible_result_has_positive_time_and_rate():
    res = run(recompute="full")
    assert res.feasible
    assert res.batch_time > 0
    assert res.sample_rate == pytest.approx(64 / res.batch_time)
    assert 0 < res.mfu < 1


def test_invalid_strategy_returns_infeasible_not_raise():
    res = run(data_par=2)  # t*p*d != 64
    assert not res.feasible
    assert "system size" in res.infeasibility
    assert res.sample_rate == 0.0


def test_memory_capacity_infeasibility():
    tiny_mem = SYS64.with_mem1_capacity(1 * GiB)
    res = run(system=tiny_mem, recompute="full")
    assert not res.feasible
    assert "tier-1 memory" in res.infeasibility


def test_backward_roughly_twice_forward():
    res = run(recompute="none")
    assert 1.5 < res.time.bw_pass / res.time.fw_pass < 2.5


def test_full_recompute_adds_forward_time_again():
    res = run(recompute="full")
    assert res.time.fw_recompute == pytest.approx(res.time.fw_pass, rel=1e-9)


def test_selective_recompute_cheaper_than_full():
    full = run(recompute="full")
    sel = run(recompute="attn_only")
    none = run(recompute="none")
    assert none.time.fw_recompute == 0
    assert 0 < sel.time.fw_recompute < full.time.fw_recompute


def test_recompute_trades_time_for_memory():
    full = run(recompute="full")
    none = run(recompute="none")
    assert full.mem1.activation < none.mem1.activation
    assert full.batch_time > none.batch_time


def test_tp_reduces_weight_and_activation_memory():
    # Paper Fig. 4: "TP cuts both weight and activation memory costs".
    lo = run(tensor_par=2, pipeline_par=8, data_par=4, batch=64)
    hi = run(tensor_par=8, pipeline_par=8, data_par=1, batch=64)
    assert hi.mem1.weight < lo.mem1.weight
    assert hi.mem1.activation < lo.mem1.activation


def test_pp_reduces_weights_but_not_activations():
    # Paper Fig. 4: "PP reduces only weights".
    lo = run(tensor_par=8, pipeline_par=2, data_par=4, batch=64)
    hi = run(tensor_par=8, pipeline_par=8, data_par=1, batch=64)
    assert hi.mem1.weight < lo.mem1.weight
    assert hi.mem1.activation >= lo.mem1.activation * 0.9


def test_dp_does_not_reduce_weight_or_activation():
    # Paper Fig. 4: "DP cannot reduce activation or weight storage".
    lo = run(tensor_par=8, pipeline_par=8, data_par=1, batch=64)
    hi = run(tensor_par=8, pipeline_par=2, data_par=4, batch=64)
    assert hi.mem1.weight >= lo.mem1.weight
    assert hi.mem1.activation >= lo.mem1.activation * 0.9


def test_optimizer_sharding_cuts_optimizer_memory():
    plain = run(tensor_par=8, pipeline_par=2, data_par=4, batch=64)
    shard = run(
        tensor_par=8, pipeline_par=2, data_par=4, batch=64, optimizer_sharding=True
    )
    assert shard.mem1.optimizer == pytest.approx(plain.mem1.optimizer / 4)


def test_no_pipeline_no_bubble():
    res = run(tensor_par=8, pipeline_par=1, data_par=8, batch=64)
    assert res.time.pp_bubble == 0.0
    assert res.time.pp_comm_total == 0.0


def test_interleaving_shrinks_bubble():
    v1 = run(pp_interleaving=1, recompute="full")
    v4 = run(pp_interleaving=4, recompute="full")
    assert v4.time.pp_bubble == pytest.approx(v1.time.pp_bubble / 4, rel=0.01)


def test_interleaving_increases_pp_comm():
    v1 = run(pp_interleaving=1)
    v4 = run(pp_interleaving=4)
    assert v4.time.pp_comm_total > v1.time.pp_comm_total


def test_more_microbatches_amortize_bubble():
    # Same local batch split into more microbatches -> smaller bubble share.
    few = run(microbatch=8, recompute="full")
    many = run(microbatch=1, recompute="full")
    assert many.time.pp_bubble / many.batch_time < few.time.pp_bubble / few.batch_time


def test_tp_comm_grows_with_tensor_parallelism():
    lo = run(tensor_par=2, pipeline_par=8, data_par=4, batch=64)
    hi = run(tensor_par=16, pipeline_par=4, data_par=1, batch=64)
    assert hi.time.tp_comm_total > lo.time.tp_comm_total


def test_tp_overlap_reduces_exposed_comm_but_taxes_compute():
    plain = run(tp_overlap="none")
    ring = run(tp_overlap="ring")
    assert ring.time.tp_comm_exposed < plain.time.tp_comm_exposed
    assert ring.time.overlap_tax > plain.time.overlap_tax
    assert ring.time.tp_comm_total == pytest.approx(plain.time.tp_comm_total)


def test_dp_overlap_reduces_exposed_dp_comm():
    plain = run(tensor_par=8, pipeline_par=2, data_par=4, batch=64)
    over = run(tensor_par=8, pipeline_par=2, data_par=4, batch=64, dp_overlap=True)
    assert over.time.dp_comm_exposed < plain.time.dp_comm_exposed
    assert over.time.dp_comm_total == pytest.approx(plain.time.dp_comm_total)


def test_sharded_optimizer_pins_allgather_outside_overlap():
    # With sharding, only the reduce-scatter half may hide behind backward.
    shard = run(
        tensor_par=8,
        pipeline_par=2,
        data_par=4,
        batch=64,
        dp_overlap=True,
        optimizer_sharding=True,
    )
    assert shard.time.dp_comm_exposed > 0


def test_seq_par_reduces_activation_memory():
    plain = run(recompute="none")
    sp = run(recompute="none", seq_par=True, tp_redo_sp=True)
    assert sp.mem1.activation < plain.mem1.activation


def test_fused_activations_reduce_memory_and_time():
    plain = run()
    fused = run(fused_activations=True)
    assert fused.mem1.activation < plain.mem1.activation
    assert fused.batch_time <= plain.batch_time


def test_offload_moves_memory_to_tier2():
    sys_off = a100_system(64, hbm_gib=1_000_000, offload=ddr5_offload(100_000))
    resident = run(system=sys_off)
    offl = run(
        system=sys_off,
        weight_offload=True,
        activation_offload=True,
        optimizer_offload=True,
    )
    assert offl.mem1.total < resident.mem1.total
    assert offl.offload.used_bytes > 0
    assert resident.offload.used_bytes == 0


def test_offload_reports_required_bandwidth():
    sys_off = a100_system(64, hbm_gib=1_000_000, offload=ddr5_offload(100_000))
    res = run(system=sys_off, activation_offload=True, weight_offload=True)
    assert res.offload.required_bandwidth > 0


def test_offload_capacity_infeasibility():
    sys_off = a100_system(64, hbm_gib=1_000_000, offload=ddr5_offload(1))
    res = run(
        system=sys_off,
        weight_offload=True,
        activation_offload=True,
        optimizer_offload=True,
    )
    assert not res.feasible
    assert "tier-2" in res.infeasibility


def test_inference_mode_skips_training_costs():
    res = run(training=False, recompute="none")
    assert res.feasible
    assert res.time.bw_pass == 0
    assert res.time.optim_step == 0
    assert res.time.dp_comm_total == 0
    assert res.mem1.optimizer == 0
    assert res.mem1.weight_grad == 0
    assert res.batch_time < run().batch_time


def test_h100_faster_than_a100():
    h = h100_system(64, hbm_gib=1_000_000)
    res_a = run(recompute="full")
    res_h = run(system=h, recompute="full")
    assert res_h.batch_time < res_a.batch_time


def test_batch_time_equals_sum_of_components():
    res = run(recompute="full", dp_overlap=True, tp_overlap="ring")
    t = res.time
    total = (
        t.fw_pass
        + t.bw_pass
        + t.fw_recompute
        + t.optim_step
        + t.pp_bubble
        + t.tp_comm_exposed
        + t.pp_comm_exposed
        + t.dp_comm_exposed
        + t.offload_exposed
        + t.overlap_tax
    )
    assert res.batch_time == pytest.approx(total)


def test_exposed_never_exceeds_total_comm():
    res = run(dp_overlap=True, tp_overlap="ring", tensor_par=8, pipeline_par=2,
              data_par=4, batch=64)
    assert res.time.tp_comm_exposed <= res.time.tp_comm_total + 1e-12
    assert res.time.dp_comm_exposed <= res.time.dp_comm_total + 1e-12


def test_summary_mentions_components():
    text = run(recompute="full").summary()
    assert "batch time" in text
    assert "FW recompute" in text
    assert "Optimizer space" in text


def test_infeasible_summary():
    text = run(data_par=2).summary()
    assert "INFEASIBLE" in text


def test_tiny_model_on_single_proc():
    res = calculate(
        TINY_TEST,
        a100_system(1),
        ExecutionStrategy(tensor_par=1, pipeline_par=1, data_par=1, batch=4),
    )
    assert res.feasible
    assert res.time.tp_comm_total == 0
    assert res.time.pp_bubble == 0
    assert res.time.dp_comm_total == 0


def test_uneven_block_division_hurts():
    # 96 blocks on p=64 -> ceil = 2 blocks/stage vs 1.5 average: cliff source.
    even = run(tensor_par=8, pipeline_par=8, data_par=1, batch=64)
    llm_uneven = LLMConfig(
        name="u", hidden=12288, attn_heads=96, seq_size=2048, num_blocks=90
    )
    uneven = calculate(
        llm_uneven,
        BIG64,
        ExecutionStrategy(tensor_par=8, pipeline_par=8, data_par=1, batch=64),
    )
    # 90 blocks / 8 stages = ceil 12 (vs 11.25): busiest stage dominates, so
    # per-block time implies worse efficiency than the even 96/8 = 12 case.
    assert uneven.feasible
    assert uneven.mfu < even.mfu
