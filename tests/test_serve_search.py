"""serve_search tests: SLO pruning oracle, checkpoints, faults, key isolation."""

import pytest

from repro.cachekey import run_key
from repro.hardware.system import h100_system
from repro.llm.config import TINY_TEST
from repro.obs import EventJournal, Tracer, read_events
from repro.search import (
    CheckpointMismatch,
    FaultInjector,
    RetryPolicy,
    SearchOptions,
)
from repro.serving import (
    LengthDist,
    ServeSearchOptions,
    ServeWorkload,
    SLOSpec,
    candidate_plans,
    serve_search,
)

SYS = h100_system(4, hbm_gib=8.0)
WL = ServeWorkload(
    arrival_rate=20.0, prompt=LengthDist.uniform(64, 128),
    output=LengthDist.uniform(16, 32), num_requests=40, seed=1,
)
SLO = SLOSpec(ttft_p95=9e-5, tpot_p95=4e-5)


def _tops_equal(a, b):
    assert len(a.top) == len(b.top)
    for (pa, sa), (pb, sb) in zip(a.top, b.top):
        assert pa == pb
        assert sa == sb  # every float field, bit for bit


def test_enumeration_deterministic_and_colocated_first():
    plans = candidate_plans(TINY_TEST, SYS)
    assert plans == candidate_plans(TINY_TEST, SYS)
    first_disagg = next(
        (i for i, p in enumerate(plans) if p.disaggregated), len(plans)
    )
    assert all(not p.disaggregated for p in plans[:first_disagg])
    assert all(p.disaggregated for p in plans[first_disagg:])


def test_unconstrained_search_ranks_by_goodput():
    result = serve_search(TINY_TEST, SYS, WL, top_k=5)
    assert result.top and result.num_pruned == 0
    goodputs = [s.goodput_rps for _, s in result.top]
    assert goodputs == sorted(goodputs, reverse=True)
    assert result.best == result.top[0]


def test_pruned_equals_exhaustive_oracle():
    """SLO-bound pruning must never change the reported top-k."""
    pruned = serve_search(TINY_TEST, SYS, WL, SLO, top_k=5, prune=True)
    oracle = serve_search(TINY_TEST, SYS, WL, SLO, top_k=5, prune=False)
    assert pruned.num_pruned > 0  # the bound actually engaged
    assert oracle.num_pruned == 0
    _tops_equal(pruned, oracle)
    assert (
        pruned.num_simulated + pruned.num_pruned + pruned.num_infeasible
        == pruned.num_candidates
    )


def test_top_contains_only_slo_satisfying_plans():
    result = serve_search(TINY_TEST, SYS, WL, SLO, top_k=10)
    for _, stats in result.top:
        assert SLO.satisfied(stats)
    assert result.num_violated + result.num_pruned > 0 or result.top


def test_impossible_slo_returns_empty():
    result = serve_search(TINY_TEST, SYS, WL, SLOSpec(ttft_p95=1e-300),
                          top_k=5)
    assert result.top == []
    assert result.num_simulated == 0  # everything bound-pruned
    assert result.num_pruned == result.num_candidates - result.num_infeasible


def test_workers_do_not_change_answer():
    serial = serve_search(TINY_TEST, SYS, WL, SLO, top_k=5)
    chunked = serve_search(TINY_TEST, SYS, WL, SLO, top_k=5, workers=2)
    _tops_equal(serial, chunked)


def test_checkpoint_resume_bit_identical(tmp_path):
    journal = tmp_path / "serve.jsonl"
    base = serve_search(TINY_TEST, SYS, WL, SLO, top_k=5)
    first = serve_search(TINY_TEST, SYS, WL, SLO, top_k=5,
                         checkpoint=journal)
    _tops_equal(base, first)
    resumed = serve_search(TINY_TEST, SYS, WL, SLO, top_k=5,
                           checkpoint=journal, resume=True,
                           collect_stats=True)
    _tops_equal(base, resumed)
    assert resumed.stats is not None and resumed.stats.resumed_chunks > 0


def test_fault_injection_recovers_bit_identical():
    base = serve_search(TINY_TEST, SYS, WL, SLO, top_k=5)
    faulted = serve_search(
        TINY_TEST, SYS, WL, SLO, top_k=5,
        retry_policy=RetryPolicy(max_retries=2, backoff_base=0.0),
        fault_injector=FaultInjector(0, "exception", fail_attempts=1),
        collect_stats=True,
    )
    _tops_equal(base, faulted)
    assert faulted.stats is not None and faulted.stats.retries >= 1


def test_obs_plumbing(tmp_path):
    tracer = Tracer()
    events = EventJournal(tmp_path / "events.jsonl", source="test")
    result = serve_search(TINY_TEST, SYS, WL, SLO, top_k=3, tracer=tracer,
                          collect_stats=True, events=events)
    events.close()
    assert result.stats is not None
    assert result.stats.candidates == result.num_candidates
    assert result.stats.prune_rate > 0
    kinds = [e.get("kind") for e in read_events(tmp_path / "events.jsonl")]
    assert "serve.start" in kinds and "serve.done" in kinds
    names = [s["name"] for s in tracer.events() if s.get("ph") == "X"]
    assert any("serve" in n for n in names)


def test_serving_keys_never_collide_with_training_keys():
    """Same (llm, system): the serving extras force a different run key."""
    train = run_key(TINY_TEST, SYS, 0, SearchOptions(), kind="search")
    opts = ServeSearchOptions()
    serve = run_key(
        TINY_TEST, SYS, 0, opts, kind="serve-search",
        extra={"workload": WL.to_dict(), "slo": SLO.to_dict(), "top_k": 5},
    )
    assert train != serve
    other_wl = run_key(
        TINY_TEST, SYS, 0, opts, kind="serve-search",
        extra={"workload": ServeWorkload(arrival_rate=21.0).to_dict(),
               "slo": SLO.to_dict(), "top_k": 5},
    )
    other_slo = run_key(
        TINY_TEST, SYS, 0, opts, kind="serve-search",
        extra={"workload": WL.to_dict(), "slo": None, "top_k": 5},
    )
    assert len({serve, other_wl, other_slo}) == 3


def test_wrong_journal_key_rejected(tmp_path):
    journal = tmp_path / "serve.jsonl"
    serve_search(TINY_TEST, SYS, WL, SLO, top_k=5, checkpoint=journal)
    other = ServeWorkload(arrival_rate=99.0, num_requests=10,
                          prompt=LengthDist.fixed(64),
                          output=LengthDist.fixed(8))
    with pytest.raises(CheckpointMismatch):
        serve_search(TINY_TEST, SYS, other, SLO, top_k=5,
                     checkpoint=journal, resume=True)


def test_options_validation():
    with pytest.raises(ValueError):
        ServeSearchOptions(splits=(0.0,))
    with pytest.raises(ValueError):
        ServeSearchOptions(splits=(1.5,))
    no_disagg = serve_search(
        TINY_TEST, SYS, WL, options=ServeSearchOptions(disagg=False), top_k=3
    )
    assert all(not p.disaggregated for p, _ in no_disagg.top)
