"""Continuous-batching serving-simulator tests (repro.serving.simulator)."""

import pytest

from repro.hardware.system import ddr5_offload, h100_system
from repro.inference import InferenceStrategy
from repro.llm.config import TINY_TEST
from repro.serving import (
    LengthDist,
    ServeWorkload,
    SLOSpec,
    check_serveability,
    decode_step_time,
    kv_reserve_bytes,
    simulate_serve,
)

SYS = h100_system(4, hbm_gib=8.0)
STRAT = InferenceStrategy(tensor_par=2, pipeline_par=1, data_par=2, batch=1)


def make_workload(rate=20.0, n=60, seed=1):
    return ServeWorkload(
        arrival_rate=rate,
        prompt=LengthDist.uniform(64, 128),
        output=LengthDist.uniform(16, 32),
        num_requests=n,
        seed=seed,
    )


def test_all_requests_complete_and_determinism():
    wl = make_workload()
    a = simulate_serve(TINY_TEST, SYS, STRAT, wl)
    b = simulate_serve(TINY_TEST, SYS, STRAT, wl)
    assert a.completed == wl.num_requests
    assert a == b  # bit-identical dataclass equality, per-request vectors included


def test_kv_bytes_conserved_exactly():
    stats = simulate_serve(TINY_TEST, SYS, STRAT, make_workload())
    assert stats.kv_allocated_bytes == stats.kv_freed_bytes
    assert stats.kv_peak_bytes <= stats.kv_allocated_bytes
    assert stats.kv_allocated_bytes > 0


def test_percentiles_ordered():
    stats = simulate_serve(TINY_TEST, SYS, STRAT, make_workload())
    assert stats.ttft_p50 <= stats.ttft_p95 <= stats.ttft_p99
    assert stats.tpot_p50 <= stats.tpot_p95 <= stats.tpot_p99
    assert len(stats.ttfts) == len(stats.tpots) == stats.completed


def test_goodput_counts_slo_meeting_requests():
    wl = make_workload()
    free = simulate_serve(TINY_TEST, SYS, STRAT, wl)
    tight = simulate_serve(
        TINY_TEST, SYS, STRAT, wl, slo=SLOSpec(ttft_p95=1e-9)
    )
    assert free.goodput_rps == free.throughput_rps  # no SLO: all good
    assert tight.good_requests == 0 and tight.goodput_rps == 0.0
    assert tight.throughput_rps == free.throughput_rps  # same dynamics


def test_max_batch_caps_occupancy_and_never_speeds_up():
    wl = make_workload(rate=200.0)
    free = simulate_serve(TINY_TEST, SYS, STRAT, wl)
    capped = simulate_serve(TINY_TEST, SYS, STRAT, wl, max_batch=2)
    assert capped.mean_batch <= 2.0 + 1e-12
    assert capped.duration >= free.duration


def test_more_replicas_do_not_hurt_under_load():
    wl = make_workload(rate=500.0, n=80)
    one = simulate_serve(
        TINY_TEST, h100_system(2, hbm_gib=8.0),
        InferenceStrategy(tensor_par=2, pipeline_par=1, data_par=1, batch=1),
        wl,
    )
    four = simulate_serve(
        TINY_TEST, h100_system(8, hbm_gib=8.0),
        InferenceStrategy(tensor_par=2, pipeline_par=1, data_par=4, batch=1),
        wl,
    )
    assert four.ttft_p95 <= one.ttft_p95


def test_paging_engages_on_tiny_hbm():
    """With HBM barely above weights, KV pages to the DDR offload tier."""
    sys_small = h100_system(
        2, hbm_gib=0.07, offload=ddr5_offload(64.0)
    )
    strat = InferenceStrategy(tensor_par=2, pipeline_par=1, data_par=1, batch=1)
    wl = ServeWorkload(
        arrival_rate=1e5, prompt=LengthDist.fixed(1024),
        output=LengthDist.fixed(32), num_requests=16, seed=0,
    )
    assert check_serveability(TINY_TEST, sys_small, strat, wl) is None
    paged = simulate_serve(TINY_TEST, sys_small, strat, wl)
    assert paged.kv_offload_bytes > 0
    assert paged.kv_allocated_bytes == paged.kv_freed_bytes
    # Paging only ever adds time relative to an all-HBM system.
    roomy = simulate_serve(
        TINY_TEST, h100_system(2, hbm_gib=8.0), strat, wl
    )
    assert roomy.kv_offload_bytes == 0
    assert paged.duration >= roomy.duration


def test_check_serveability_rejects():
    wl = make_workload()
    bad_shape = InferenceStrategy(tensor_par=3, pipeline_par=1, data_par=1,
                                  batch=1)
    assert check_serveability(
        TINY_TEST, h100_system(3, hbm_gib=8.0), bad_shape, wl
    ) is not None
    no_room = h100_system(2, hbm_gib=0.001)
    strat = InferenceStrategy(tensor_par=2, pipeline_par=1, data_par=1, batch=1)
    assert check_serveability(TINY_TEST, no_room, strat, wl) is not None
    with pytest.raises(ValueError):
        simulate_serve(TINY_TEST, no_room, strat, wl)


def test_kv_reserve_bytes_exact_integer():
    b = kv_reserve_bytes(TINY_TEST, 160, 2, 1)
    assert isinstance(b, int) and b > 0
    assert kv_reserve_bytes(TINY_TEST, 320, 2, 1) == 2 * b


def test_decode_step_time_monotone():
    args = (TINY_TEST, SYS, 2, 1)
    assert decode_step_time(*args, 1, 64) <= decode_step_time(*args, 8, 64)
    assert decode_step_time(*args, 1, 64) <= decode_step_time(*args, 1, 512)
