"""Cost-model and budget-search tests (paper §7, Table 3)."""

import pytest

from repro.llm import LLMConfig
from repro.search import (
    SearchOptions,
    SystemDesign,
    all_designs,
    budget_table,
    evaluate_design,
)
from repro.units import GiB


def test_price_composition_matches_paper():
    # Table 3 "Price" column: e.g. 20G/0 -> $22.2k; 80G/512G -> $40k.
    assert SystemDesign(20, 0).price_per_gpu == pytest.approx(22_250)
    assert SystemDesign(40, 0).price_per_gpu == pytest.approx(25_000)
    assert SystemDesign(80, 0).price_per_gpu == pytest.approx(30_000)
    assert SystemDesign(120, 0).price_per_gpu == pytest.approx(40_000)
    assert SystemDesign(20, 256).price_per_gpu == pytest.approx(24_750)
    assert SystemDesign(80, 512).price_per_gpu == pytest.approx(40_000)
    assert SystemDesign(120, 1024).price_per_gpu == pytest.approx(60_000)


def test_max_gpus_under_budget():
    # $125M / $25k = 5000 exactly (Table 3's 40G/0 row).
    assert SystemDesign(40, 0).max_gpus(125e6) == 5000
    # $125M / $22.25k = 5617.9 -> 5616 rounded to a multiple of 8.
    assert SystemDesign(20, 0).max_gpus(125e6) == 5616
    # $125M / $30k = 4166 -> 4160.
    assert SystemDesign(80, 0).max_gpus(125e6) == 4160
    # $125M / $60k = 2083 -> 2080 (Table 3's 120G/1T row).
    assert SystemDesign(120, 1024).max_gpus(125e6) == 2080


def test_max_gpus_zero_when_unaffordable():
    assert SystemDesign(120, 1024).max_gpus(1000.0) == 0


def test_all_designs_is_the_16_grid():
    designs = all_designs()
    assert len(designs) == 16
    assert len({(d.hbm_gib, d.ddr_gib) for d in designs}) == 16


def test_invalid_design_options_rejected():
    with pytest.raises(ValueError):
        SystemDesign(60, 0)
    with pytest.raises(ValueError):
        SystemDesign(80, 128)


def test_build_attaches_requested_memory():
    sys_ = SystemDesign(40, 512).build(64)
    assert sys_.mem1.capacity == 40 * GiB
    assert sys_.mem2 is not None and sys_.mem2.capacity == 512 * GiB
    assert SystemDesign(40, 0).build(64).mem2 is None


def test_label():
    assert SystemDesign(80, 256).label() == "80G/256G"


SMALL_LLM = LLMConfig(name="tiny-budget", hidden=2048, attn_heads=16, seq_size=1024,
                      num_blocks=8)
FAST_OPTS = SearchOptions(
    recompute=("full",),
    seq_par_modes=((False, False, False),),
    tp_overlap=("none",),
    dp_overlap=(False,),
    optimizer_sharding=(True,),
    fused_activations=(False,),
    max_microbatch=2,
)


def test_evaluate_design_finds_configuration():
    entry = evaluate_design(
        SystemDesign(80, 0),
        SMALL_LLM,
        budget=600_000.0,  # affords 20 GPUs -> 16 after rounding
        batch=32,
        options=FAST_OPTS,
        size_candidates=[8, 16],
    )
    assert entry.max_gpus == 16
    assert entry.used_gpus in (8, 16)
    assert entry.sample_rate > 0
    assert entry.cost == entry.used_gpus * 30_000
    assert entry.perf_per_million == pytest.approx(
        entry.sample_rate / (entry.cost / 1e6)
    )


def test_evaluate_design_infeasible_when_budget_too_small():
    entry = evaluate_design(
        SystemDesign(80, 0),
        SMALL_LLM,
        budget=10_000.0,
        batch=32,
        options=FAST_OPTS,
        size_candidates=[8],
    )
    assert entry.used_gpus == 0
    assert entry.sample_rate == 0.0
    assert entry.perf_per_million == 0.0


def test_budget_table_grid_shape():
    rows = budget_table(
        [SMALL_LLM],
        budget=600_000.0,
        batch=32,
        designs=[SystemDesign(40, 0), SystemDesign(80, 0)],
        options=FAST_OPTS,
        size_candidates=[8, 16],
    )
    assert len(rows) == 2
    assert all(len(r) == 1 for r in rows)
    assert rows[0][0].design.hbm_gib == 40
