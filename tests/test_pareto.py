"""Pareto-frontier extraction tests."""

import pytest

from repro.analysis.pareto import Objective, dominates, knee_point, pareto_front

PERF = Objective(name="perf", key=lambda c: c["perf"], maximize=True)
COST = Objective(name="cost", key=lambda c: c["cost"], maximize=False)
OBJS = (PERF, COST)


def c(perf, cost):
    return {"perf": perf, "cost": cost}


def test_dominates_strictly_better():
    assert dominates(c(10, 5), c(8, 6), OBJS)
    assert not dominates(c(8, 6), c(10, 5), OBJS)


def test_dominates_requires_strict_improvement_somewhere():
    assert not dominates(c(10, 5), c(10, 5), OBJS)
    assert dominates(c(10, 4), c(10, 5), OBJS)


def test_incomparable_points_do_not_dominate():
    fast_dear, slow_cheap = c(10, 10), c(5, 2)
    assert not dominates(fast_dear, slow_cheap, OBJS)
    assert not dominates(slow_cheap, fast_dear, OBJS)


def test_pareto_front_filters_dominated():
    candidates = [c(10, 10), c(5, 2), c(9, 11), c(4, 3), c(10, 9)]
    front = pareto_front(candidates, OBJS)
    assert c(10, 9) in front
    assert c(5, 2) in front
    assert c(9, 11) not in front  # dominated by (10, 9)
    assert c(4, 3) not in front  # dominated by (5, 2)
    assert c(10, 10) not in front  # dominated by (10, 9)


def test_pareto_front_single_objective_is_argmax():
    candidates = [c(3, 0), c(7, 0), c(5, 0)]
    front = pareto_front(candidates, (PERF,))
    assert front == [c(7, 0)]


def test_pareto_front_preserves_input_order():
    candidates = [c(5, 2), c(10, 9)]
    assert pareto_front(candidates, OBJS) == candidates


def test_pareto_front_empty_input():
    assert pareto_front([], OBJS) == []


def test_objectives_required():
    with pytest.raises(ValueError):
        pareto_front([c(1, 1)], ())
    with pytest.raises(ValueError):
        dominates(c(1, 1), c(2, 2), ())


def test_tolerance_merges_near_ties():
    a, b = c(10.0, 5.0), c(10.05, 5.0)
    assert dominates(b, a, OBJS)
    assert not dominates(b, a, OBJS, tol=0.1)


def test_knee_point_picks_balanced_member():
    front = [c(10, 10), c(6, 4), c(2, 1)]
    knee = knee_point(front, OBJS)
    assert knee == c(6, 4)


def test_knee_point_handles_degenerate_front():
    assert knee_point([], OBJS) is None
    only = [c(5, 5)]
    assert knee_point(only, OBJS) == only[0]


def test_end_to_end_with_performance_results():
    """Frontier over real model outputs: time vs HBM footprint."""
    from repro.core import calculate
    from repro.execution import ExecutionStrategy
    from repro.hardware import a100_system
    from repro.llm import LLMConfig

    llm = LLMConfig(name="pf", hidden=2048, attn_heads=16, seq_size=1024,
                    num_blocks=8)
    system = a100_system(8, hbm_gib=1_000_000)
    results = []
    for rc in ("none", "attn_only", "full"):
        res = calculate(
            llm, system,
            ExecutionStrategy(tensor_par=8, pipeline_par=1, data_par=1,
                              batch=8, recompute=rc),
        )
        results.append(res)
    objs = (
        Objective("rate", key=lambda r: r.sample_rate, maximize=True),
        Objective("hbm", key=lambda r: r.mem1.total, maximize=False),
    )
    front = pareto_front(results, objs)
    # 'none' is fastest, 'full' is smallest: both survive; 'attn_only'
    # survives only if it is not dominated (it trades between them).
    assert results[0] in front
    assert results[2] in front
