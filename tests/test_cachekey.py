"""The shared content-addressed run key (repro.cachekey)."""

from repro.cachekey import canonical_json, content_key, run_key
from repro.engine import ENGINE_VERSION
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import get_preset
from repro.search import SearchOptions
from repro.search import checkpoint as checkpoint_mod


def _strategy(**kw):
    base = dict(tensor_par=8, pipeline_par=8, data_par=1, batch=64)
    base.update(kw)
    return ExecutionStrategy(**base)


def test_checkpoint_reexports_the_shared_run_key():
    # Compatibility promise: the journal's run_key IS the cachekey one.
    assert checkpoint_mod.run_key is run_key


def test_same_problem_same_key():
    llm, system = get_preset("gpt3-175b"), a100_system(64)
    opts = SearchOptions.megatron_baseline()
    assert run_key(llm, system, 64, opts) == run_key(llm, system, 64, opts)


def test_key_covers_every_input_axis():
    llm, system = get_preset("gpt3-175b"), a100_system(64)
    opts = SearchOptions.megatron_baseline()
    base = run_key(llm, system, 64, opts)
    assert run_key(get_preset("megatron-22b"), system, 64, opts) != base
    assert run_key(llm, a100_system(128), 64, opts) != base
    assert run_key(llm, system, 128, opts) != base
    assert run_key(llm, system, 64, SearchOptions.all_optimizations()) != base
    assert run_key(llm, system, 64, opts, kind="sweep") != base
    assert run_key(llm, system, 64, opts, extra={"top_k": 5}) != base


def test_key_is_sensitive_to_engine_version():
    llm, system = get_preset("gpt3-175b"), a100_system(64)
    strat = _strategy()
    current = run_key(llm, system, 64, strat)
    assert current == run_key(llm, system, 64, strat, engine_version=ENGINE_VERSION)
    assert current != run_key(
        llm, system, 64, strat, engine_version=ENGINE_VERSION + 1
    )


def test_strategies_are_hashable_options():
    llm, system = get_preset("gpt3-175b"), a100_system(64)
    a = run_key(llm, system, 64, _strategy())
    b = run_key(llm, system, 64, _strategy(microbatch=2))
    assert a != b


def test_canonical_json_is_order_independent():
    assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
    assert content_key({"b": 1, "a": 2}) == content_key({"a": 2, "b": 1})
