"""Strategy-preset tests."""

import pytest

from repro.core import calculate
from repro.execution import (
    PRESETS,
    calculon_software,
    get_strategy_preset,
    megatron_baseline,
    megatron_seq_par,
    zero_offload,
)
from repro.hardware import a100_system, ddr5_offload
from repro.llm import LLMConfig

LLM = LLMConfig(name="preset-llm", hidden=2048, attn_heads=16, seq_size=1024,
                num_blocks=16)


def test_all_presets_registered():
    assert set(PRESETS) == {
        "megatron-baseline",
        "megatron-seq-par",
        "calculon-software",
        "zero-offload",
    }
    assert get_strategy_preset("megatron-baseline") is megatron_baseline
    with pytest.raises(KeyError, match="unknown strategy preset"):
        get_strategy_preset("nope")


def test_baseline_flags():
    s = megatron_baseline(8, 2, 1, 16)
    assert s.recompute == "full"
    assert not s.seq_par
    assert not s.optimizer_sharding
    assert s.pp_1f1b


def test_seq_par_flags():
    s = megatron_seq_par(8, 2, 1, 16)
    assert s.recompute == "attn_only"
    assert s.seq_par and s.tp_redo_sp and s.pp_rs_ag


def test_calculon_software_flags():
    s = calculon_software(8, 2, 1, 16)
    assert s.optimizer_sharding and s.dp_overlap and s.fused_activations
    assert s.tp_overlap == "ring"
    # Interleaving collapses to 1 when there is no pipeline.
    assert calculon_software(8, 1, 2, 16).pp_interleaving == 1


def test_zero_offload_flags():
    s = zero_offload(8, 1, 2, 16)
    assert s.weight_offload and s.activation_offload and s.optimizer_offload
    assert s.recompute == "none"


def test_presets_run_end_to_end():
    sys_plain = a100_system(16, hbm_gib=1_000_000)
    sys_off = a100_system(16, hbm_gib=1_000_000, offload=ddr5_offload(100_000))
    base = calculate(LLM, sys_plain, megatron_baseline(8, 2, 1, 16))
    sp = calculate(LLM, sys_plain, megatron_seq_par(8, 2, 1, 16))
    sw = calculate(LLM, sys_plain, calculon_software(8, 2, 1, 16))
    off = calculate(LLM, sys_off, zero_offload(8, 1, 2, 16))
    for res in (base, sp, sw, off):
        assert res.feasible, res.infeasibility
    # The paper's ladder ordering holds on this small model too.
    assert sp.batch_time < base.batch_time
    assert sw.batch_time <= sp.batch_time * 1.05
