"""Edge-case tests for the core model: boundary shapes and rare regimes."""

import pytest

from repro.core import calculate
from repro.core.model import _in_flight_microbatches
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system, ddr5_offload
from repro.llm import LLMConfig

LLM = LLMConfig(name="edge-llm", hidden=1024, attn_heads=8, seq_size=512,
                num_blocks=12)
BIG = a100_system(8, hbm_gib=1_000_000)


def run(system=BIG, llm=LLM, **kw):
    base = dict(tensor_par=2, pipeline_par=4, data_par=1, batch=8, microbatch=1)
    base.update(kw)
    return calculate(llm, system, ExecutionStrategy(**base))


# ---- in-flight microbatch accounting ------------------------------------------

def test_in_flight_single_stage_is_one():
    assert _in_flight_microbatches(M=16, p=1, v=1, one_f_one_b=True) == 1.0
    assert _in_flight_microbatches(M=16, p=1, v=4, one_f_one_b=False) == 1.0


def test_in_flight_1f1b_caps_at_pipeline_depth():
    assert _in_flight_microbatches(M=64, p=8, v=1, one_f_one_b=True) == 8.0


def test_in_flight_fewer_microbatches_than_stages():
    assert _in_flight_microbatches(M=4, p=8, v=1, one_f_one_b=True) == 4.0


def test_in_flight_gpipe_holds_everything():
    assert _in_flight_microbatches(M=64, p=8, v=1, one_f_one_b=False) == 64.0


def test_in_flight_interleaving_adds_partial_set():
    v2 = _in_flight_microbatches(M=64, p=8, v=2, one_f_one_b=True)
    assert v2 == pytest.approx(8 + 7 / 2)
    v4 = _in_flight_microbatches(M=64, p=8, v=4, one_f_one_b=True)
    assert 8.0 < v4 < v2


# ---- boundary shapes ------------------------------------------------------------

def test_m_less_than_p_still_works():
    # Fewer microbatches than stages: a mostly-bubble pipeline, but legal.
    res = run(batch=2, pipeline_par=4, tensor_par=2, data_par=1, microbatch=1)
    assert res.feasible
    assert res.time.pp_bubble > 0


def test_batch_equals_data_par():
    res = run(batch=4, tensor_par=2, pipeline_par=1, data_par=4, microbatch=1)
    assert res.feasible
    assert res.time.pp_bubble == 0


def test_single_block_per_stage_with_max_interleaving():
    # p = blocks: one block per stage; only v = 1 is possible.
    res = run(pipeline_par=12, tensor_par=1, data_par=1, batch=8,
              system=a100_system(12, hbm_gib=1_000_000))
    assert res.feasible


def test_uneven_blocks_round_up():
    # 12 blocks on p = 5 -> busiest stage holds 3.
    sys5 = a100_system(10, hbm_gib=1_000_000)
    res = calculate(
        LLM, sys5,
        ExecutionStrategy(tensor_par=2, pipeline_par=5, data_par=1, batch=8),
    )
    assert res.feasible
    even = calculate(
        LLM, a100_system(8, hbm_gib=1_000_000),
        ExecutionStrategy(tensor_par=2, pipeline_par=4, data_par=1, batch=8),
    )
    # 5 stages x 3 blocks = 15 charged block-slots vs 4 x 3 = 12: despite
    # more hardware, the uneven split wastes the difference.
    assert res.mfu < even.mfu


def test_gpipe_memory_exceeds_1f1b():
    f1b1 = run(recompute="none", pp_1f1b=True, batch=32)
    gpipe = run(recompute="none", pp_1f1b=False, batch=32)
    assert gpipe.mem1.activation > f1b1.mem1.activation
    # Time model is schedule-agnostic for the bubble (fill+drain equal).
    assert gpipe.time.pp_bubble == pytest.approx(f1b1.time.pp_bubble)


def test_max_interleaving_equals_blocks_per_stage():
    res = run(pp_interleaving=3)  # 12 blocks / 4 stages = 3
    assert res.feasible
    over = run(pp_interleaving=4)
    assert not over.feasible


def test_offload_with_single_block_stage():
    sys_off = a100_system(12, hbm_gib=1_000_000, offload=ddr5_offload(100_000))
    res = calculate(
        LLM, sys_off,
        ExecutionStrategy(tensor_par=1, pipeline_par=12, data_par=1, batch=8,
                          weight_offload=True, activation_offload=True,
                          optimizer_offload=True),
    )
    assert res.feasible
    # A 1-block stage cannot hold a 3-block working set; it clamps.
    assert res.mem1.weight <= 3 * res.mem1.weight / 1  # sanity: finite


def test_seq_par_with_t_equal_seq_divisor_boundary():
    llm = LLMConfig(name="e2", hidden=1024, attn_heads=8, seq_size=8,
                    num_blocks=4)
    res = calculate(
        llm, BIG,
        ExecutionStrategy(tensor_par=8, pipeline_par=1, data_par=1, batch=8,
                          seq_par=True, tp_redo_sp=True),
    )
    assert res.feasible


def test_huge_microbatch_equals_local_batch():
    res = run(microbatch=8, batch=8, pipeline_par=1, tensor_par=2, data_par=4,
              system=BIG)
    assert not res.feasible or res.feasible  # must not raise
    res2 = run(microbatch=8, batch=8, tensor_par=8, pipeline_par=1, data_par=1,
               system=BIG)
    assert res2.feasible
    assert res2.time.pp_bubble == 0


def test_interleaving_one_on_deep_pipeline_bubble_dominates():
    res = run(batch=4, pipeline_par=4, tensor_par=2, microbatch=1,
              pp_interleaving=1)
    # M = 4 microbatches, p = 4: bubble fraction = (p-1)/(p-1+M) = 3/7.
    frac = res.time.pp_bubble / (
        res.time.pp_bubble + res.time.fw_pass + res.time.bw_pass
        + res.time.fw_recompute + res.time.tp_comm_exposed
    )
    assert frac == pytest.approx(3 / 7, abs=0.08)
