"""Collective-algorithm model tests (ring / tree / in-network / hierarchical)."""

import pytest

from repro.hardware import Network
from repro.hardware.collectives import (
    CollectiveEstimate,
    best_time,
    hierarchical_all_reduce,
    in_network_time,
    ring_time,
    tree_time,
)
from repro.units import GB

NET = Network(name="n", size=64, bandwidth=100 * GB, latency=2e-6, efficiency=1.0)
SHARP = Network(
    name="s", size=64, bandwidth=100 * GB, latency=2e-6, efficiency=1.0,
    in_network_collectives=True,
)


def test_ring_allreduce_formula():
    g, size = 8, 1e9
    # Per-step message = size/g = 125 MB, comfortably at full efficiency.
    expect = 2 * size * (g - 1) / g / (100 * GB) + 2 * (g - 1) * 2e-6
    assert ring_time(NET, "all_reduce", size, g) == pytest.approx(expect)


def test_tree_allreduce_formula():
    g, size = 8, 1e6
    expect = 2 * size / NET.message_bandwidth(size) + 2 * 3 * 2e-6
    assert tree_time(NET, "all_reduce", size, g) == pytest.approx(expect)


def test_tree_wins_for_small_payloads_large_groups():
    small = best_time(NET, "all_reduce", 1e4, 64)
    assert small.algorithm == "tree"
    big = best_time(NET, "all_reduce", 1e9, 8)
    assert big.algorithm == "ring"


def test_in_network_wins_when_available():
    est = best_time(SHARP, "all_reduce", 1e9, 64)
    assert est.algorithm == "in-network"
    assert est.time == pytest.approx(1e9 / (100 * GB) + 2e-6)


def test_in_network_not_offered_without_capability():
    est = best_time(NET, "all_reduce", 1e9, 64)
    assert est.algorithm in ("ring", "tree")


def test_best_is_minimum_of_candidates():
    for size in (1e3, 1e6, 1e9):
        est = best_time(NET, "all_reduce", size, 16)
        assert est.time <= ring_time(NET, "all_reduce", size, 16) + 1e-15
        assert est.time <= tree_time(NET, "all_reduce", size, 16) + 1e-15


def test_rs_ag_fall_back_to_ring_under_tree():
    assert tree_time(NET, "reduce_scatter", 1e6, 8) == ring_time(
        NET, "reduce_scatter", 1e6, 8
    )
    assert in_network_time(NET, "all_gather", 1e6, 8) == ring_time(
        NET, "all_gather", 1e6, 8
    )


def test_broadcast_tree_single_traversal():
    g, size = 16, 1e6
    expect = size / NET.message_bandwidth(size) + 4 * 2e-6
    assert tree_time(NET, "broadcast", size, g) == pytest.approx(expect)


def test_single_rank_and_zero_bytes_free():
    assert ring_time(NET, "all_reduce", 1e6, 1) == 0.0
    assert tree_time(NET, "all_reduce", 0.0, 8) == 0.0
    assert best_time(NET, "all_reduce", 0.0, 8).time == 0.0


def test_validation():
    with pytest.raises(ValueError):
        ring_time(NET, "gossip", 1e6, 8)
    with pytest.raises(ValueError):
        tree_time(NET, "all_reduce", -1.0, 8)
    with pytest.raises(ValueError):
        in_network_time(NET, "all_reduce", 1e6, 0)
    with pytest.raises(ValueError):
        CollectiveEstimate(time=-1.0, algorithm="ring")


# ---- hierarchical -------------------------------------------------------------

NVLINK = Network(name="nvl", size=8, bandwidth=300 * GB, latency=0.7e-6,
                 efficiency=1.0)
IB = Network(name="ib", size=512, bandwidth=25 * GB, latency=5e-6, efficiency=1.0)


def test_hierarchical_beats_flat_ring_across_nodes():
    nbytes, inner, outer = 1e9, 8, 64
    flat = ring_time(IB, "all_reduce", nbytes, inner * outer)
    hier = hierarchical_all_reduce(IB if False else NVLINK, IB, nbytes, inner, outer)
    assert hier < flat
    # The win approaches the inner-domain factor for large payloads.
    assert flat / hier > 3.0


def test_hierarchical_degenerate_cases():
    nbytes = 1e8
    # inner_group == 1: plain outer all-reduce.
    assert hierarchical_all_reduce(NVLINK, IB, nbytes, 1, 16) == pytest.approx(
        best_time(IB, "all_reduce", nbytes, 16).time
    )
    # outer_group == 1: plain inner all-reduce.
    assert hierarchical_all_reduce(NVLINK, IB, nbytes, 8, 1) == pytest.approx(
        best_time(NVLINK, "all_reduce", nbytes, 8).time
    )
    # Single processor overall: free.
    assert hierarchical_all_reduce(NVLINK, IB, nbytes, 1, 1) == 0.0


def test_hierarchical_validation():
    with pytest.raises(ValueError):
        hierarchical_all_reduce(NVLINK, IB, 1e6, 0, 8)
    with pytest.raises(ValueError):
        hierarchical_all_reduce(NVLINK, IB, -1.0, 8, 8)


def test_hierarchical_components_add_up():
    nbytes, inner, outer = 1e9, 8, 64
    expect = (
        ring_time(NVLINK, "reduce_scatter", nbytes, inner)
        + best_time(IB, "all_reduce", nbytes / inner, outer).time
        + ring_time(NVLINK, "all_gather", nbytes, inner)
    )
    assert hierarchical_all_reduce(NVLINK, IB, nbytes, inner, outer) == pytest.approx(
        expect
    )
