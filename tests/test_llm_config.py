"""LLM configuration tests (paper §2.1)."""

import pytest

from repro.llm import (
    GPT3_175B,
    LLMConfig,
    MEGATRON_1T,
    MEGATRON_22B,
    TURING_530B,
    get_preset,
    iter_presets,
)


def test_gpt3_parameter_count_is_approximately_175b():
    # 96 blocks x 12288 hidden reproduces the published ~175e9 parameters.
    assert GPT3_175B.total_parameters == pytest.approx(175e9, rel=0.03)


def test_megatron_1t_parameter_count():
    assert MEGATRON_1T.total_parameters == pytest.approx(1.0e12, rel=0.03)


def test_turing_530b_parameter_count():
    assert TURING_530B.total_parameters == pytest.approx(530e9, rel=0.03)


def test_megatron_22b_parameter_count():
    assert MEGATRON_22B.total_parameters == pytest.approx(22e9, rel=0.1)


def test_feedforward_defaults_to_4x_hidden():
    cfg = LLMConfig(name="x", hidden=1024, attn_heads=16, seq_size=128, num_blocks=2)
    assert cfg.feedforward == 4096


def test_explicit_feedforward_is_kept():
    cfg = LLMConfig(
        name="x", hidden=1024, attn_heads=16, seq_size=128, num_blocks=2, feedforward=2048
    )
    assert cfg.feedforward == 2048


def test_attn_size_divides_hidden():
    assert GPT3_175B.attn_size == 12288 // 96


def test_hidden_must_divide_by_heads():
    with pytest.raises(ValueError, match="divisible"):
        LLMConfig(name="bad", hidden=1000, attn_heads=7, seq_size=128, num_blocks=2)


@pytest.mark.parametrize("field", ["hidden", "attn_heads", "seq_size", "num_blocks"])
def test_positive_hyperparameters_required(field):
    kwargs = dict(name="bad", hidden=512, attn_heads=8, seq_size=128, num_blocks=2)
    kwargs[field] = 0
    with pytest.raises(ValueError):
        LLMConfig(**kwargs)


def test_unsupported_precision_rejected():
    with pytest.raises(ValueError, match="precision"):
        LLMConfig(
            name="bad", hidden=512, attn_heads=8, seq_size=128, num_blocks=2,
            bits_per_element=12,
        )


def test_block_parameters_formula():
    cfg = LLMConfig(name="x", hidden=8, attn_heads=2, seq_size=4, num_blocks=1)
    h, f = 8, 32
    expected = (h * 3 * h + 3 * h + h * h + h) + (h * f + f + f * h + h) + 4 * h
    assert cfg.block_parameters == expected


def test_with_seq_returns_modified_copy():
    longer = GPT3_175B.with_seq(4096)
    assert longer.seq_size == 4096
    assert GPT3_175B.seq_size == 2048
    assert longer.hidden == GPT3_175B.hidden


def test_dict_roundtrip():
    again = LLMConfig.from_dict(GPT3_175B.to_dict())
    assert again == GPT3_175B


def test_get_preset_known_and_unknown():
    assert get_preset("gpt3-175b") is GPT3_175B
    with pytest.raises(KeyError, match="unknown LLM preset"):
        get_preset("nope")


def test_iter_presets_contains_paper_models():
    names = {m.name for m in iter_presets()}
    assert {"gpt3-175b", "turing-530b", "megatron-1t", "megatron-22b"} <= names


def test_bytes_per_element():
    assert GPT3_175B.bytes_per_element == 2


def test_palm_540b_scale():
    from repro.llm import PALM_540B

    # PaLM's published 540B count includes SwiGLU/multi-query deltas; the
    # standard-transformer equivalent preserves the scale within ~15%.
    assert PALM_540B.total_parameters == pytest.approx(540e9, rel=0.15)
    assert PALM_540B.vocab_size == 256000


def test_bloom_176b_scale():
    from repro.llm import BLOOM_176B

    assert BLOOM_176B.total_parameters == pytest.approx(176e9, rel=0.05)
