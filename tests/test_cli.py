"""CLI smoke tests (each subcommand end-to-end via main())."""

import json

import pytest

from repro.cli import main


def test_run_with_preset_and_flags(capsys):
    rc = main(
        [
            "run",
            "gpt3-175b",
            "a100:64",
            "--tp", "8", "--pp", "8", "--dp", "1",
            "--batch", "64",
            "--recompute", "full",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "batch time" in out
    assert "model evaluated" in out


def test_run_infeasible_returns_nonzero(capsys):
    rc = main(
        ["run", "gpt3-175b", "a100:64", "--tp", "8", "--pp", "8", "--dp", "2",
         "--batch", "64"]
    )
    assert rc == 1
    assert "INFEASIBLE" in capsys.readouterr().out


def test_run_with_json_specs(tmp_path, capsys):
    llm = {
        "name": "mini",
        "hidden": 1024,
        "attn_heads": 16,
        "seq_size": 512,
        "num_blocks": 8,
        "feedforward": 4096,
        "vocab_size": 32000,
        "bits_per_element": 16,
    }
    llm_path = tmp_path / "llm.json"
    llm_path.write_text(json.dumps(llm))
    strat = {
        "tensor_par": 4,
        "pipeline_par": 2,
        "data_par": 1,
        "batch": 8,
        "microbatch": 1,
        "recompute": "full",
    }
    strat_path = tmp_path / "exec.json"
    strat_path.write_text(json.dumps(strat))
    rc = main(["run", str(llm_path), "a100:8", "--strategy", str(strat_path)])
    assert rc == 0
    assert "mini" in capsys.readouterr().out


def test_run_h100_with_offload(capsys):
    rc = main(
        ["run", "megatron-22b", "h100:64:80:512", "--tp", "8", "--pp", "1",
         "--dp", "8", "--batch", "64", "--offload", "--optimizer-sharding"]
    )
    assert rc == 0
    assert "offload used" in capsys.readouterr().out


def test_search_subcommand(capsys):
    rc = main(
        ["search", "megatron-22b", "a100:16", "--batch", "32",
         "--options", "baseline", "--top", "3", "--workers", "0"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "feasible" in out
    assert "config" in out


def test_sweep_subcommand(capsys):
    rc = main(
        ["sweep", "megatron-22b", "a100:8", "--batch", "32",
         "--max-size", "16", "--step", "8", "--options", "baseline"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "rel scaling" in out


def test_presets_subcommand(capsys):
    rc = main(["presets"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "gpt3-175b" in out
    assert "megatron-1t" in out


def test_bad_system_spec_exits():
    with pytest.raises(SystemExit):
        main(["run", "gpt3-175b", "cray:64"])


def test_bad_options_preset_exits():
    with pytest.raises(SystemExit):
        main(["search", "gpt3-175b", "a100:16", "--options", "bogus"])


def test_inference_subcommand(capsys):
    rc = main(
        ["inference", "gpt3-175b", "a100:8", "--tp", "8", "--batch", "8",
         "--prompt", "1024", "--generate", "64"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "time to first token" in out
    assert "tokens/s" in out


def test_inference_latency_mode(capsys):
    rc = main(
        ["inference", "megatron-22b", "a100:8", "--tp", "4", "--pp", "2",
         "--batch", "4", "--latency-mode"]
    )
    assert rc == 0


def test_inference_infeasible_returns_nonzero(capsys):
    rc = main(
        ["inference", "megatron-1t", "a100:8", "--tp", "8", "--batch", "64"]
    )
    assert rc == 1
    assert "INFEASIBLE" in capsys.readouterr().out


def test_plan_subcommand(capsys):
    rc = main(
        ["plan", "megatron-22b", "a100:64", "--tp", "8", "--pp", "1",
         "--dp", "8", "--batch", "64", "--tokens", "1e9", "--rate", "2.0"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "zettaFLOP" in out
    assert "$2.0/GPU-hour" in out


def test_plan_infeasible(capsys):
    rc = main(
        ["plan", "megatron-1t", "a100:8", "--tp", "8", "--pp", "1",
         "--dp", "1", "--batch", "8", "--tokens", "1e9"]
    )
    assert rc == 1
    assert "error" in capsys.readouterr().out


def test_refine_subcommand(capsys):
    rc = main(["refine", "megatron-22b", "a100:16", "--batch", "32"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "hill-climbed" in out
    assert "batch time" in out


def test_v100_and_h200_system_specs(capsys):
    rc = main(
        ["run", "megatron-22b", "v100:64", "--tp", "8", "--pp", "8",
         "--dp", "1", "--batch", "64", "--recompute", "full"]
    )
    assert rc == 0
    assert "v100" in capsys.readouterr().out
    rc = main(
        ["run", "megatron-22b", "h200:64", "--tp", "8", "--pp", "8",
         "--dp", "1", "--batch", "64", "--recompute", "full"]
    )
    assert rc == 0
    assert "h200" in capsys.readouterr().out


def test_sensitivity_subcommand(capsys):
    rc = main(
        ["sensitivity", "megatron-22b", "a100:16", "--tp", "8", "--pp", "2",
         "--batch", "16"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "elasticity" in out
    assert "matrix_flops" in out


def test_sensitivity_infeasible(capsys):
    rc = main(
        ["sensitivity", "megatron-1t", "a100:8", "--tp", "8", "--pp", "1",
         "--batch", "8"]
    )
    assert rc == 1
    assert "error" in capsys.readouterr().out


def test_run_csv_format(capsys):
    rc = main(
        ["run", "megatron-22b", "a100:16", "--tp", "8", "--pp", "2",
         "--batch", "16", "--recompute", "full", "--format", "csv"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert out.startswith("llm,system,strategy")
    assert "megatron-22b" in out


def test_run_json_format(capsys):
    import json

    rc = main(
        ["run", "megatron-22b", "a100:16", "--tp", "8", "--pp", "2",
         "--batch", "16", "--recompute", "full", "--format", "json"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    data = json.loads(out)
    assert data["feasible"] is True
    assert data["time.fw_pass"] > 0


def test_deployments_subcommand(capsys):
    rc = main(["deployments", "megatron-22b", "a100:8", "--prompt", "512",
               "--generate", "64"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "TTFT" in out
    assert "tok/s/GPU" in out


def test_deployments_nothing_fits(capsys):
    rc = main(["deployments", "megatron-1t", "a100:2", "--prompt", "128",
               "--generate", "16"])
    assert rc == 1
    assert "no feasible deployment" in capsys.readouterr().out


def test_calibrate_subcommand(tmp_path, capsys):
    import json

    manifest = [
        {
            "llm": "tiny-test",
            "system": "a100:8",
            "strategy": {
                "tensor_par": 8, "pipeline_par": 1, "data_par": 1,
                "batch": 8, "microbatch": 1, "recompute": "full",
            },
            "measured_time": 0.05,
        }
    ]
    path = tmp_path / "runs.json"
    path.write_text(json.dumps(manifest))
    rc = main(["calibrate", str(path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "fitted matrix plateau" in out
    assert "mean abs error" in out
