"""Soundness of the SLO lower bounds: bound ≤ measured, always.

The prune-safety argument (docs/SERVING.md) stands on one inequality per
percentile: the bound computed by ``plan_bounds`` never exceeds what the
simulator reports.  These tests sweep every candidate plan of a small
system across workloads and assert it bound-by-bound, then check the
admission test ``slo_admits`` is the exact contrapositive used by the
search.
"""

import pytest

from repro.hardware.system import h100_system
from repro.llm.config import TINY_TEST
from repro.serving import (
    LengthDist,
    ServeWorkload,
    SLOSpec,
    TPOT_SAFETY,
    candidate_plans,
    check_plan,
    plan_bounds,
    simulate_plan,
    slo_admits,
)

SYS = h100_system(4, hbm_gib=8.0)


def _workloads():
    yield ServeWorkload(arrival_rate=20.0, prompt=LengthDist.uniform(64, 128),
                        output=LengthDist.uniform(16, 32), num_requests=40,
                        seed=1)
    yield ServeWorkload(arrival_rate=500.0, prompt=LengthDist.fixed(256),
                        output=LengthDist.fixed(8), num_requests=30, seed=7)
    yield ServeWorkload(arrival_rate=2.0, prompt=LengthDist.uniform(32, 512),
                        output=LengthDist.uniform(4, 64), num_requests=25,
                        seed=42)


@pytest.mark.parametrize("workload", list(_workloads()),
                         ids=["mixed", "burst", "sparse"])
def test_bounds_never_exceed_measured(workload):
    checked = 0
    for plan in candidate_plans(TINY_TEST, SYS):
        if check_plan(TINY_TEST, SYS, plan, workload) is not None:
            continue
        bounds = plan_bounds(TINY_TEST, SYS, plan, workload)
        stats = simulate_plan(TINY_TEST, SYS, plan, workload)
        assert bounds.ttft_p50 <= stats.ttft_p50
        assert bounds.ttft_p95 <= stats.ttft_p95
        assert bounds.ttft_p99 <= stats.ttft_p99
        assert bounds.tpot_p95 <= stats.tpot_p95
        checked += 1
    assert checked > 0


def test_slo_admits_is_sound():
    """A plan the simulator says satisfies the SLO is never bound-rejected."""
    workload = next(iter(_workloads()))
    for plan in candidate_plans(TINY_TEST, SYS):
        if check_plan(TINY_TEST, SYS, plan, workload) is not None:
            continue
        stats = simulate_plan(TINY_TEST, SYS, plan, workload)
        # An SLO set exactly at the measured percentiles is satisfied by
        # construction; soundness (bound <= measured) forces admission.
        slo = SLOSpec(ttft_p50=stats.ttft_p50, ttft_p95=stats.ttft_p95,
                      ttft_p99=stats.ttft_p99, tpot_p95=stats.tpot_p95)
        assert slo.satisfied(stats)
        bounds = plan_bounds(TINY_TEST, SYS, plan, workload)
        assert slo_admits(bounds, slo)


def test_slo_admits_unconstrained_and_violations():
    workload = next(iter(_workloads()))
    plan = candidate_plans(TINY_TEST, SYS)[0]
    bounds = plan_bounds(TINY_TEST, SYS, plan, workload)
    assert slo_admits(bounds, None)
    assert slo_admits(bounds, SLOSpec())
    impossible = SLOSpec(ttft_p95=1e-300)
    assert not slo_admits(bounds, impossible)
    assert any("ttft_p95" in v for v in bounds.violated(impossible))


def test_tpot_safety_margin_is_tiny():
    assert 0.999999 < TPOT_SAFETY < 1.0
