"""Inference-model tests: prefill, decode, KV cache, serving metrics."""

import pytest

from repro.hardware import a100_system, h100_system
from repro.inference import (
    InferenceStrategy,
    calculate_inference,
    kv_cache_bytes,
    profile_decode_block,
)
from repro.llm import GPT3_175B, LLMConfig
from repro.units import GiB

LLM = LLMConfig(name="serve-llm", hidden=4096, attn_heads=32, seq_size=2048,
                num_blocks=32)


def serve(system=None, llm=LLM, prompt=512, gen=128, **kw):
    base = dict(tensor_par=4, pipeline_par=2, data_par=1, batch=4)
    base.update(kw)
    strat = InferenceStrategy(**base)
    system = system or a100_system(strat.num_procs)
    return calculate_inference(llm, system, strat, prompt_len=prompt,
                               generate_len=gen)


# ---- KV cache ----------------------------------------------------------------

def test_kv_cache_formula():
    # 2 tensors x batch x context x hidden x 2 bytes x blocks / t.
    expect = 2 * 4 * 1024 * 4096 * 2 * 32 / 4
    assert kv_cache_bytes(LLM, 4, 1024, 4) == pytest.approx(expect)


def test_kv_cache_scales_linearly():
    one = kv_cache_bytes(LLM, 1, 512)
    assert kv_cache_bytes(LLM, 8, 512) == pytest.approx(8 * one)
    assert kv_cache_bytes(LLM, 1, 1024) == pytest.approx(2 * one)


def test_kv_cache_validates():
    with pytest.raises(ValueError):
        kv_cache_bytes(LLM, 0, 512)


# ---- decode block profile ------------------------------------------------------

def test_decode_profile_weight_stream_matches_block_weights():
    prof = profile_decode_block(LLM, batch=1, context=512, tensor_par=1)
    h, f = LLM.hidden, LLM.feedforward
    expect = (4 * h * h + 2 * h * f) * 2  # all projection matrices, fp16
    assert prof.weight_read_bytes == pytest.approx(expect)


def test_decode_cache_read_grows_with_context():
    short = profile_decode_block(LLM, batch=1, context=128)
    long = profile_decode_block(LLM, batch=1, context=1024)
    assert long.cache_read_bytes == pytest.approx(8 * short.cache_read_bytes)
    assert long.flops > short.flops


def test_decode_profile_sharded_by_tp():
    full = profile_decode_block(LLM, batch=2, context=256, tensor_par=1)
    shard = profile_decode_block(LLM, batch=2, context=256, tensor_par=4)
    assert shard.flops == pytest.approx(full.flops / 4)
    assert shard.weight_read_bytes == pytest.approx(full.weight_read_bytes / 4)
    assert full.tp_comm_count == 0
    assert shard.tp_comm_count == 2


def test_decode_profile_validates():
    with pytest.raises(ValueError):
        profile_decode_block(LLM, batch=0, context=10)
    with pytest.raises(ValueError):
        profile_decode_block(LLM, batch=1, context=10, tensor_par=3)


# ---- serving model ----------------------------------------------------------

def test_feasible_serving_result():
    res = serve()
    assert res.feasible
    assert res.prefill_time > 0
    assert res.decode_step_time > 0
    assert res.tokens_per_second > 0
    assert res.request_latency == pytest.approx(
        res.prefill_time + res.generate_time
    )


def test_prefill_dominates_per_token_decode():
    # Processing a 512-token prompt takes far longer than one decode step.
    res = serve()
    assert res.prefill_time > 10 * res.decode_step_time


def test_decode_is_memory_bound_so_bigger_batch_is_nearly_free():
    b1 = serve(batch=1)
    b8 = serve(batch=8)
    # 8x the tokens in much less than 8x the step time.
    assert b8.decode_step_time < 4 * b1.decode_step_time
    assert b8.tokens_per_second > 3 * b1.tokens_per_second


def test_pipelining_requests_multiplies_throughput_not_latency():
    pipe = serve(pipelined_requests=True)
    solo = serve(pipelined_requests=False)
    assert pipe.decode_step_time == pytest.approx(solo.decode_step_time)
    assert pipe.tokens_per_second == pytest.approx(2 * solo.tokens_per_second)


def test_replicas_multiply_throughput():
    one = serve()
    two = serve(data_par=2, system=a100_system(16))
    assert two.tokens_per_second == pytest.approx(2 * one.tokens_per_second)
    assert two.decode_step_time == pytest.approx(one.decode_step_time)


def test_tensor_parallel_cuts_decode_latency():
    t1 = serve(tensor_par=1, pipeline_par=2, system=a100_system(2))
    t4 = serve(tensor_par=4, pipeline_par=2, system=a100_system(8))
    assert t4.decode_step_time < t1.decode_step_time


def test_kv_cache_capacity_gates_feasibility():
    small = a100_system(8, hbm_gib=1.0)
    res = serve(system=small, batch=64, prompt=2048, gen=2048)
    assert not res.feasible
    assert "memory" in res.infeasibility


def test_gpt3_on_8xa100_serves():
    strat = InferenceStrategy(tensor_par=8, pipeline_par=1, batch=8)
    res = calculate_inference(
        GPT3_175B, a100_system(8), strat, prompt_len=2048, generate_len=256
    )
    assert res.feasible
    # ~350 GB of fp16 weights / 8 GPUs = ~44 GB/GPU.
    assert 35 * GiB < res.weights_bytes < 55 * GiB
    # A100 decode latency for 175B at t=8 is tens of milliseconds.
    assert 0.005 < res.decode_step_time < 0.2


def test_h100_decodes_faster_than_a100():
    strat = InferenceStrategy(tensor_par=8, pipeline_par=1, batch=8)
    a = calculate_inference(GPT3_175B, a100_system(8), strat, prompt_len=1024,
                            generate_len=64)
    h = calculate_inference(GPT3_175B, h100_system(8), strat, prompt_len=1024,
                            generate_len=64)
    assert h.decode_step_time < a.decode_step_time
    assert h.prefill_time < a.prefill_time


def test_strategy_validation():
    with pytest.raises(ValueError, match="system size"):
        serve(data_par=3, system=a100_system(8))
    with pytest.raises(ValueError, match="divide"):
        InferenceStrategy(tensor_par=3, pipeline_par=1).validate(
            LLM, a100_system(3)
        )
    with pytest.raises(ValueError, match="block count"):
        InferenceStrategy(tensor_par=1, pipeline_par=64).validate(
            LLM, a100_system(64)
        )
    with pytest.raises(ValueError):
        serve(prompt=0)


def test_summary_output():
    text = serve().summary()
    assert "time to first token" in text
    assert "tokens/s" in text
    small = a100_system(8, hbm_gib=0.1)
    assert "INFEASIBLE" in serve(system=small).summary()


def test_zero_generation_request():
    res = serve(gen=0)
    assert res.feasible
    assert res.generate_time == 0.0
    assert res.tokens_per_second == 0.0
    assert res.prefill_time > 0
