"""End-to-end: kill a checkpointed search mid-run, resume, compare.

This is the scenario the journal exists for: the process *dies* (not an
exception — ``os._exit``, like the OOM killer) halfway through a sweep, and
a fresh process with ``resume=True`` completes it bit-identically to a run
that was never interrupted.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.hardware import a100_system
from repro.llm import LLMConfig
from repro.search import CheckpointJournal, SearchOptions, search

LLM = LLMConfig(name="e2e-llm", hidden=2048, attn_heads=16, seq_size=1024,
                num_blocks=16)
SYS = a100_system(16)
REPO = Path(__file__).resolve().parent.parent

# Serial supervised runs slice the space into exactly 4 chunks
# (``ceil(len / (max(workers, 1) * 4))``); crashing on chunk 2 leaves
# chunks 0 and 1 in the journal — a genuine half-finished run.
CRASH_CHUNK = 2
EXIT_CODE = 23

_SCRIPT = """
import sys
from repro.llm import LLMConfig
from repro.hardware import a100_system
from repro.search import FaultInjector, search, SearchOptions

llm = LLMConfig(name="e2e-llm", hidden=2048, attn_heads=16, seq_size=1024,
                num_blocks=16)
opts = SearchOptions(
    recompute=("full",), seq_par_modes=((False, False, False),),
    tp_overlap=("none",), dp_overlap=(False,), optimizer_sharding=(False,),
    fused_activations=(False,), max_microbatch=4)
injector = FaultInjector({chunk}, mode="crash", exit_code={exit_code})
search(llm, a100_system(16), batch=32, options=opts, workers=0,
       top_k=5, checkpoint=sys.argv[1], fault_injector=injector)
print("UNEXPECTED: survived the crash")
"""


def small_options(**kw):
    base = dict(
        recompute=("full",),
        seq_par_modes=((False, False, False),),
        tp_overlap=("none",),
        dp_overlap=(False,),
        optimizer_sharding=(False,),
        fused_activations=(False,),
        max_microbatch=4,
    )
    base.update(kw)
    return SearchOptions(**base)


def test_crash_then_resume_matches_uninterrupted(tmp_path):
    journal_path = tmp_path / "journal.jsonl"

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-c",
         _SCRIPT.format(chunk=CRASH_CHUNK, exit_code=EXIT_CODE),
         str(journal_path)],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == EXIT_CODE, proc.stderr
    assert "UNEXPECTED" not in proc.stdout

    # The crash left a valid partial journal: exactly the pre-crash chunks.
    partial = CheckpointJournal.load(journal_path)
    assert partial is not None
    assert sorted(partial.ids()) == [str(n) for n in range(CRASH_CHUNK)]

    ref = search(LLM, SYS, batch=32, options=small_options(), workers=0,
                 top_k=5, checkpoint=tmp_path / "ref.jsonl")
    got = search(LLM, SYS, batch=32, options=small_options(), workers=0,
                 top_k=5, checkpoint=journal_path, resume=True)

    assert got.stats is not None and got.stats.resumed_chunks == CRASH_CHUNK
    assert got.num_evaluated == ref.num_evaluated
    assert got.num_feasible == ref.num_feasible
    assert np.array_equal(got.sample_rates, ref.sample_rates)
    assert [s.to_dict() for s, _ in got.top] == [s.to_dict() for s, _ in ref.top]
    assert [r.sample_rate for _, r in got.top] == [
        r.sample_rate for _, r in ref.top
    ]
    assert got.best.sample_rate == ref.best.sample_rate


# ---------------------------------------------------------------------------
# CLI fault flags
# ---------------------------------------------------------------------------

def test_cli_search_deadline_then_resume(tmp_path, capsys):
    journal = tmp_path / "cli.jsonl"
    rc = main(
        ["search", "megatron-22b", "a100:16", "--batch", "32",
         "--options", "baseline", "--top", "3", "--workers", "0",
         "--checkpoint", str(journal), "--deadline", "0"]
    )
    captured = capsys.readouterr()
    # Nothing was evaluated before the deadline, so the CLI reports "no
    # feasible configuration" (exit 1) — but warns and leaves the journal.
    assert rc == 1
    assert "deadline hit" in captured.err
    assert journal.exists()

    rc = main(
        ["search", "megatron-22b", "a100:16", "--batch", "32",
         "--options", "baseline", "--top", "3", "--workers", "0",
         "--checkpoint", str(journal), "--resume"]
    )
    captured = capsys.readouterr()
    assert rc == 0
    assert "deadline hit" not in captured.err
    assert "config" in captured.out


def test_cli_resume_requires_checkpoint():
    with pytest.raises(SystemExit, match="--resume requires --checkpoint"):
        main(["search", "megatron-22b", "a100:16", "--batch", "32",
              "--options", "baseline", "--workers", "0", "--resume"])


def test_cli_refine_checkpoint_resume(tmp_path, capsys):
    journal = tmp_path / "refine.jsonl"
    args = ["refine", "megatron-22b", "a100:16", "--batch", "32",
            "--checkpoint", str(journal)]
    rc = main(args)
    first = capsys.readouterr().out
    assert rc == 0
    rc = main(args + ["--resume"])
    second = capsys.readouterr().out
    assert rc == 0
    # All climbs were journaled, so the resumed answer is identical.  The
    # first output line carries elapsed wall time — strip it before
    # comparing ("hill-climbed to <strategy> in <N> evaluations (X.X s)").
    def head(out):
        lines = out.splitlines()
        return [lines[0].split(" (")[0], *lines[1:2]]

    assert head(first) == head(second)


def test_cli_sweep_checkpoint(tmp_path, capsys):
    journal = tmp_path / "sweep.jsonl"
    rc = main(
        ["sweep", "megatron-22b", "a100:8", "--batch", "32",
         "--max-size", "16", "--step", "8", "--options", "baseline",
         "--checkpoint", str(journal)]
    )
    assert rc == 0
    assert "rel scaling" in capsys.readouterr().out
    assert journal.exists()
    rc = main(
        ["sweep", "megatron-22b", "a100:8", "--batch", "32",
         "--max-size", "16", "--step", "8", "--options", "baseline",
         "--checkpoint", str(journal), "--resume"]
    )
    assert rc == 0
    assert "resumed" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# packaging metadata
# ---------------------------------------------------------------------------

def test_version_matches_pyproject():
    import repro

    text = (REPO / "pyproject.toml").read_text()
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.MULTILINE)
    assert match is not None
    assert repro.__version__ == match.group(1)
