"""Mixture-of-Experts extension tests."""

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import LLMConfig
from repro.moe import MoEConfig, calculate_moe

BASE = LLMConfig(name="moe-base", hidden=2048, attn_heads=16, seq_size=1024,
                 num_blocks=16)
BIG = a100_system(16, hbm_gib=1_000_000)


def moe_cfg(**kw):
    base = dict(base=BASE, num_experts=8, experts_per_token=2,
                capacity_factor=1.25, moe_every=2)
    base.update(kw)
    return MoEConfig(**base)


def strat(**kw):
    base = dict(tensor_par=2, pipeline_par=2, data_par=4, batch=16,
                microbatch=1, recompute="none", optimizer_sharding=True)
    base.update(kw)
    return ExecutionStrategy(**base)


# ---- configuration -----------------------------------------------------------

def test_moe_parameter_accounting():
    cfg = moe_cfg()
    # 8 MoE layers x 7 extra experts each.
    extra = 8 * 7 * cfg.expert_parameters
    assert cfg.total_parameters == BASE.total_parameters + extra
    assert cfg.total_parameters > 3 * BASE.total_parameters


def test_active_parameters_grow_with_top_k():
    one = moe_cfg(experts_per_token=1)
    two = moe_cfg(experts_per_token=2)
    assert one.active_parameters_per_token == BASE.total_parameters
    assert two.active_parameters_per_token > one.active_parameters_per_token


def test_moe_name():
    assert moe_cfg().name == "moe-base-moe8x2"


def test_config_validation():
    with pytest.raises(ValueError):
        moe_cfg(num_experts=1)
    with pytest.raises(ValueError):
        moe_cfg(experts_per_token=9)
    with pytest.raises(ValueError):
        moe_cfg(capacity_factor=0.9)
    with pytest.raises(ValueError):
        moe_cfg(moe_every=0)


# ---- model ----------------------------------------------------------------------

def test_moe_costs_more_than_dense_backbone():
    res = calculate_moe(moe_cfg(), BIG, strat())
    dense = calculate(BASE, BIG, strat())
    assert res.feasible
    assert res.batch_time > dense.batch_time
    assert res.moe_compute_time > 0
    assert res.all_to_all_time > 0
    assert res.expert_memory > 0
    assert res.mem_total > dense.mem1.total


def test_top1_cheaper_than_top2():
    one = calculate_moe(moe_cfg(experts_per_token=1), BIG, strat())
    two = calculate_moe(moe_cfg(experts_per_token=2), BIG, strat())
    assert one.moe_compute_time < two.moe_compute_time
    assert one.all_to_all_time < two.all_to_all_time


def test_expert_parallelism_shards_memory():
    ep1 = calculate_moe(moe_cfg(), BIG, strat(), expert_par=1)
    ep4 = calculate_moe(moe_cfg(), BIG, strat(), expert_par=4)
    assert ep4.expert_memory < ep1.expert_memory
    # ep=1 keeps every expert local: no all-to-all at all.
    assert ep1.all_to_all_time == 0.0
    assert ep4.all_to_all_time > 0.0


def test_expert_par_must_divide_experts():
    with pytest.raises(ValueError, match="divide"):
        calculate_moe(moe_cfg(), BIG, strat(), expert_par=3)


def test_default_expert_par_is_dp_bounded():
    res_default = calculate_moe(moe_cfg(), BIG, strat())
    res_explicit = calculate_moe(moe_cfg(), BIG, strat(), expert_par=4)
    assert res_default.batch_time == pytest.approx(res_explicit.batch_time)


def test_capacity_factor_inflates_cost():
    lean = calculate_moe(moe_cfg(capacity_factor=1.0), BIG, strat())
    fat = calculate_moe(moe_cfg(capacity_factor=2.0), BIG, strat())
    assert fat.moe_compute_time > lean.moe_compute_time
    assert fat.all_to_all_time > lean.all_to_all_time


def test_moe_memory_can_gate_feasibility():
    small = a100_system(16, hbm_gib=8)
    res = calculate_moe(moe_cfg(num_experts=64), small,
                        strat(recompute="full"))
    if not res.feasible:
        assert "expert memory" in res.infeasibility or res.dense.infeasibility
    # A huge-memory system always fits.
    assert calculate_moe(moe_cfg(num_experts=64), BIG, strat()).feasible


def test_infeasible_dense_propagates():
    res = calculate_moe(moe_cfg(), BIG, strat(data_par=3))
    assert not res.feasible
    assert res.sample_rate == 0.0


def test_sample_rate():
    res = calculate_moe(moe_cfg(), BIG, strat())
    assert res.sample_rate == pytest.approx(16 / res.batch_time)


def test_moe_cheaper_than_dense_model_of_equal_parameters():
    """The MoE selling point: same parameter count, far less compute."""
    cfg = moe_cfg()
    # A dense model with the MoE's parameter count: widen the MLP by exactly
    # the extra parameters (d params / d feedforward = (2h + 1) per block).
    extra = cfg.total_parameters - BASE.total_parameters
    ff_extra = extra / (BASE.num_blocks * (2 * BASE.hidden + 1))
    # Snap the widened MLP to a multiple of 16 so t=2 divides it evenly.
    ff = int(BASE.feedforward + ff_extra)
    ff -= ff % 16
    dense_equal = LLMConfig(
        name="dense-eq", hidden=BASE.hidden, attn_heads=BASE.attn_heads,
        seq_size=BASE.seq_size, num_blocks=BASE.num_blocks,
        feedforward=ff,
    )
    assert dense_equal.total_parameters == pytest.approx(
        cfg.total_parameters, rel=0.02
    )
    moe_res = calculate_moe(cfg, BIG, strat())
    dense_res = calculate(dense_equal, BIG, strat())
    assert moe_res.batch_time < dense_res.batch_time
