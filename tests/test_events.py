"""Flight-recorder journal: emission, rotation, reading, validation.

The journal is the third observability layer (spans -> counters ->
*events*); these tests pin the properties the analyzer and CI validator
rely on: every line carries the schema-versioned envelope, rotation keeps
exactly one prior generation, readers see write order, and the validator
flags envelope violations and probable-typo kinds.
"""

import json
import os

import pytest

from repro.obs import (
    EVENT_KINDS,
    EVENTS_VERSION,
    EventJournal,
    read_events,
    validate_events,
    validate_events_file,
)
from repro.obs.events import iter_events


# ---------------------------------------------------------------------------
# Emission and reading
# ---------------------------------------------------------------------------

def test_emit_roundtrip_carries_envelope_and_fields(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventJournal(path, source="search", trace_id="abc123") as journal:
        journal.emit("chunk.dispatch", chunk=0, attempt=0, mode="pool")
        journal.emit("chunk.done", chunk=0, seconds=0.25)
    events = read_events(path)
    assert [e["kind"] for e in events] == ["chunk.dispatch", "chunk.done"]
    for e in events:
        assert e["v"] == EVENTS_VERSION
        assert e["pid"] == os.getpid()
        assert isinstance(e["ts"], float)
        assert isinstance(e["mono"], float)
        assert e["source"] == "search"
        assert e["trace_id"] == "abc123"
    assert events[0]["chunk"] == 0 and events[0]["mode"] == "pool"
    assert events[1]["seconds"] == 0.25


def test_source_and_trace_id_are_optional(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventJournal(path) as journal:
        journal.emit("search.start", candidates=10)
    (event,) = read_events(path)
    assert "source" not in event
    assert "trace_id" not in event


def test_mono_timebase_is_monotone_across_events(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventJournal(path) as journal:
        for n in range(5):
            journal.emit("chunk.done", chunk=n, seconds=0.0)
    monos = [e["mono"] for e in read_events(path)]
    assert monos == sorted(monos)


def test_missing_file_reads_empty(tmp_path):
    assert read_events(tmp_path / "never-written.jsonl") == []
    assert list(iter_events(tmp_path / "never-written.jsonl")) == []


def test_emit_after_close_reopens(tmp_path):
    path = tmp_path / "events.jsonl"
    journal = EventJournal(path)
    journal.emit("search.start")
    journal.close()
    journal.emit("search.done")  # lazily reopens in append mode
    journal.close()
    assert [e["kind"] for e in read_events(path)] == ["search.start", "search.done"]


def test_concurrent_sources_share_one_file(tmp_path):
    # The supervisor and the service may share a journal path; O_APPEND
    # keeps both attributable via their source tags.
    path = tmp_path / "events.jsonl"
    with EventJournal(path, source="search") as a, \
            EventJournal(path, source="server") as b:
        a.emit("chunk.done", chunk=0, seconds=0.1)
        b.emit("request.done", seconds=0.2, strategies=1)
        a.emit("chunk.done", chunk=1, seconds=0.1)
    events = read_events(path)
    assert [e["source"] for e in events] == ["search", "server", "search"]


# ---------------------------------------------------------------------------
# Rotation
# ---------------------------------------------------------------------------

def test_rotation_keeps_one_prior_generation_and_reads_in_order(tmp_path):
    path = tmp_path / "events.jsonl"
    pad = "x" * 80  # ~200 bytes per line -> first rotation near event 20
    with EventJournal(path, max_bytes=4096) as journal:
        for n in range(30):
            journal.emit("chunk.done", chunk=n, seconds=0.0, pad=pad)
    rotated = tmp_path / "events.jsonl.1"
    assert rotated.exists()
    assert path.stat().st_size <= 4096
    events = read_events(path)
    # No event lost across the single rotation, and write order survives
    # the rotated-generation-first read.
    assert [e["chunk"] for e in events] == list(range(30))


def test_max_bytes_floor_is_enforced(tmp_path):
    with pytest.raises(ValueError, match="max_bytes"):
        EventJournal(tmp_path / "events.jsonl", max_bytes=100)


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def _valid_event(**over):
    event = {
        "v": EVENTS_VERSION,
        "kind": "chunk.done",
        "ts": 1700000000.0,
        "mono": 12.5,
        "pid": 4242,
    }
    event.update(over)
    return event


def test_validator_accepts_emitted_events(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventJournal(path, source="search") as journal:
        for kind in ("search.start", "chunk.dispatch", "chunk.retry",
                     "cache.hit", "batch.dispatch", "search.done"):
            assert kind in EVENT_KINDS
            journal.emit(kind)
    assert validate_events_file(path) == []


def test_validator_flags_missing_envelope_key():
    event = _valid_event()
    del event["pid"]
    (error,) = validate_events([event])
    assert "missing key 'pid'" in error


def test_validator_flags_bool_masquerading_as_int():
    # JSON has no bool/int confusion but Python does; a True pid is a bug.
    errors = validate_events([_valid_event(pid=True)])
    assert any("'pid'" in e and "bool" in e for e in errors)


def test_validator_flags_future_schema_version():
    errors = validate_events([_valid_event(v=EVENTS_VERSION + 1)])
    assert any("unsupported schema version" in e for e in errors)


def test_validator_flags_unknown_kind():
    errors = validate_events([_valid_event(kind="chunk.telported")])
    assert any("unknown kind" in e for e in errors)


def test_validator_flags_non_object_line():
    errors = validate_events(["not-a-dict"])
    assert errors == ["event 0: not an object"]


def test_validate_file_missing_journal(tmp_path):
    (error,) = validate_events_file(tmp_path / "nope.jsonl")
    assert "no such event journal" in error


def test_validate_file_rejects_torn_json(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text(json.dumps(_valid_event()) + "\n" + '{"kind": "chunk.do')
    (error,) = validate_events_file(path)
    assert "not valid JSON" in error
