"""Chrome-trace export tests."""

import json

import pytest

from repro.simulator import PipelineParams, simulate_timeline
from repro.simulator.trace import timeline_to_trace_events, write_trace


@pytest.fixture
def timeline():
    return simulate_timeline(
        PipelineParams(num_stages=2, num_microbatches=3, interleaving=2,
                       fw_time=1.0, bw_time=2.0)
    )


def test_event_count(timeline):
    events = timeline_to_trace_events(timeline)
    meta = [e for e in events if e["ph"] == "M"]
    slots = [e for e in events if e["ph"] == "X"]
    assert len(meta) == 2  # one thread_name per device
    assert len(slots) == 2 * 2 * 3 * 2  # stages * chunks * microbatches * phases


def test_events_have_microsecond_timestamps(timeline):
    slots = [e for e in timeline_to_trace_events(timeline) if e["ph"] == "X"]
    fw = [e for e in slots if e["cat"] == "forward"]
    assert all(e["dur"] == pytest.approx(1e6) for e in fw)
    bw = [e for e in slots if e["cat"] == "backward"]
    assert all(e["dur"] == pytest.approx(2e6) for e in bw)


def test_events_carry_schedule_coordinates(timeline):
    slots = [e for e in timeline_to_trace_events(timeline) if e["ph"] == "X"]
    for e in slots:
        assert set(e["args"]) == {"microbatch", "chunk", "vstage"}
        assert e["tid"] == e["args"]["vstage"] % 2


def test_write_trace_roundtrip(timeline, tmp_path):
    path = write_trace(timeline, tmp_path / "schedule.json")
    data = json.loads(path.read_text())
    assert data["otherData"]["stages"] == 2
    assert data["otherData"]["interleaving"] == 2
    assert len(data["traceEvents"]) > 0
    names = {e["name"] for e in data["traceEvents"] if e["ph"] == "X"}
    assert "forward c0 m0" in names
    assert "backward c1 m2" in names
