"""Network collective-time tests (paper §2.2)."""

import pytest

from repro.hardware import Network
from repro.units import GB


def net(**kw):
    base = dict(name="n", size=8, bandwidth=300 * GB, latency=1e-6, efficiency=0.85)
    base.update(kw)
    return Network(**base)


def test_ring_allreduce_volume_factor():
    n = net(latency=0.0)
    g, size = 8, 1e9
    expect = 2 * size * (g - 1) / g / (300 * GB * 0.85)
    assert n.collective_time("all_reduce", size, g) == pytest.approx(expect)


def test_reduce_scatter_is_half_an_allreduce():
    n = net(latency=0.0)
    ar = n.collective_time("all_reduce", 1e9, 8)
    rs = n.collective_time("reduce_scatter", 1e9, 8)
    ag = n.collective_time("all_gather", 1e9, 8)
    assert rs + ag == pytest.approx(ar)


def test_p2p_moves_payload_once():
    n = net(latency=0.0)
    assert n.collective_time("p2p", 1e9, 2) == pytest.approx(1e9 / (300 * GB * 0.85))


def test_in_network_collectives_halve_allreduce():
    plain = net(latency=0.0)
    sharp = net(latency=0.0, in_network_collectives=True)
    g, size = 8, 1e9
    ratio = plain.collective_time("all_reduce", size, g) / sharp.collective_time(
        "all_reduce", size, g
    )
    assert ratio == pytest.approx(2 * (g - 1) / g)


def test_latency_charged_per_step():
    n = net(latency=1e-6)
    base = net(latency=0.0)
    g = 8
    extra = n.collective_time("all_gather", 1e6, g) - base.collective_time(
        "all_gather", 1e6, g
    )
    assert extra == pytest.approx((g - 1) * 1e-6)


def test_single_rank_collective_is_free():
    assert net().collective_time("all_reduce", 1e9, 1) == 0.0


def test_zero_bytes_is_free():
    assert net().collective_time("all_reduce", 0.0, 8) == 0.0


def test_time_monotone_in_payload():
    n = net()
    times = [n.collective_time("all_reduce", s, 8) for s in (1e6, 1e7, 1e8, 1e9)]
    assert times == sorted(times)
    assert times[0] < times[-1]


def test_time_monotone_in_group_size():
    n = net(size=64)
    times = [n.collective_time("all_reduce", 1e9, g) for g in (2, 4, 8, 16, 64)]
    assert times == sorted(times)


def test_unknown_op_rejected():
    with pytest.raises(ValueError, match="unknown collective"):
        net().collective_time("gossip", 1e6, 8)


def test_invalid_group_rejected():
    with pytest.raises(ValueError):
        net().collective_time("all_reduce", 1e6, 0)


def test_negative_bytes_rejected():
    with pytest.raises(ValueError):
        net().collective_time("all_reduce", -1.0, 8)


def test_processor_fraction_scales_with_busy_time():
    n = net(processor_usage=0.15)
    assert n.required_processor_fraction(1.0) == pytest.approx(0.15)
    assert n.required_processor_fraction(0.5) == pytest.approx(0.075)
    assert n.required_processor_fraction(0.0) == 0.0


def test_processor_fraction_validates_input():
    with pytest.raises(ValueError):
        net().required_processor_fraction(1.5)


def test_validation_rules():
    with pytest.raises(ValueError):
        net(size=0)
    with pytest.raises(ValueError):
        net(bandwidth=0)
    with pytest.raises(ValueError):
        net(latency=-1)
    with pytest.raises(ValueError):
        net(efficiency=0)
    with pytest.raises(ValueError):
        net(processor_usage=1.0)


def test_op_handling_override_tree():
    from repro.hardware.collectives import ring_time, tree_time

    plain = net(latency=2e-6)
    treed = net(latency=2e-6, op_handling=(("all_reduce", "tree"),))
    size, g = 1e5, 8
    assert treed.collective_time("all_reduce", size, g) == pytest.approx(
        tree_time(treed, "all_reduce", size, g)
    )
    assert plain.collective_time("all_reduce", size, g) == pytest.approx(
        ring_time(plain, "all_reduce", size, g)
    )


def test_op_handling_best_never_worse_than_default():
    default = net()
    tuned = net(op_handling=(("all_reduce", "best"),))
    for size in (1e3, 1e6, 1e9):
        assert tuned.collective_time("all_reduce", size, 64) <= (
            default.collective_time("all_reduce", size, 64) + 1e-15
        )


def test_op_handling_in_network_override():
    sharp = net(op_handling=(("all_reduce", "in_network"),))
    g, size = 8, 1e9
    expect = size / sharp.message_bandwidth(size) + sharp.latency
    assert sharp.collective_time("all_reduce", size, g) == pytest.approx(expect)


def test_op_handling_only_affects_named_op():
    tuned = net(op_handling=(("all_reduce", "tree"),))
    plain = net()
    assert tuned.collective_time("all_gather", 1e6, 8) == pytest.approx(
        plain.collective_time("all_gather", 1e6, 8)
    )


def test_op_handling_validation():
    with pytest.raises(ValueError, match="unknown op"):
        net(op_handling=(("gossip", "ring"),))
    with pytest.raises(ValueError, match="unknown algorithm"):
        net(op_handling=(("all_reduce", "magic"),))


def test_message_bandwidth_ramp():
    n = net()
    assert n.message_bandwidth(64 << 20) == pytest.approx(n.effective_bandwidth)
    assert n.message_bandwidth(8192) < n.message_bandwidth(1 << 20)
    assert n.message_bandwidth(0) == pytest.approx(n.effective_bandwidth)
