"""Per-layer profiling tests."""

import pytest

from repro.core import hottest_layers, profile_layers
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import LLMConfig

LLM = LLMConfig(name="lr-llm", hidden=4096, attn_heads=32, seq_size=2048,
                num_blocks=8)
SYS = a100_system(8, hbm_gib=1_000_000)


def strat(**kw):
    base = dict(tensor_par=8, pipeline_par=1, data_par=1, batch=8, microbatch=1)
    base.update(kw)
    return ExecutionStrategy(**base)


def test_profiles_cover_all_block_layers():
    profiles = profile_layers(LLM, SYS, strat())
    assert len(profiles) == 15
    names = [p.name for p in profiles]
    assert names[0] == "attn_ln"
    assert "mlp_fc2_gemm" in names


def test_gemms_dominate_time():
    profiles = profile_layers(LLM, SYS, strat())
    gemm_time = sum(p.total_time for p in profiles if p.engine == "matrix")
    total = sum(p.total_time for p in profiles)
    assert gemm_time / total > 0.5


def test_layer_times_sum_to_block_profile():
    from repro.core.model import _profile_block

    profiles = profile_layers(LLM, SYS, strat())
    prof = _profile_block(LLM, SYS, 1, 8, False, False, False, "none", "1d")
    assert sum(p.fw_time for p in profiles) == pytest.approx(prof.fw_time)
    assert sum(p.bw_time for p in profiles) == pytest.approx(prof.bw_time)


def test_large_gemms_compute_bound_elementwise_memory_bound():
    profiles = {p.name: p for p in profile_layers(LLM, SYS, strat(microbatch=4))}
    assert profiles["mlp_fc1_gemm"].fw_compute_bound
    assert not profiles["attn_ln"].fw_compute_bound
    assert not profiles["mlp_dropout"].fw_compute_bound


def test_hottest_layers_sorted():
    profiles = profile_layers(LLM, SYS, strat())
    hot = hottest_layers(profiles, 3)
    assert len(hot) == 3
    assert hot[0].total_time >= hot[1].total_time >= hot[2].total_time
    assert all("gemm" in p.name for p in hot)


def test_hottest_layers_validation():
    profiles = profile_layers(LLM, SYS, strat())
    with pytest.raises(ValueError):
        hottest_layers(profiles, 0)


def test_invalid_strategy_raises():
    with pytest.raises(ValueError):
        profile_layers(LLM, SYS, strat(data_par=3))


def test_fusion_changes_profile():
    plain = {p.name: p for p in profile_layers(LLM, SYS, strat())}
    fused = {p.name: p for p in profile_layers(
        LLM, SYS, strat(fused_activations=True))}
    assert "mlp_gelu_fused" in fused
    assert fused["mlp_gelu_fused"].fw_time <= plain["mlp_gelu"].fw_time


def test_cli_layers_subcommand(capsys):
    from repro.cli import main

    rc = main(["layers", "megatron-22b", "a100:16", "--tp", "8", "--pp", "2",
               "--batch", "16"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "mlp_fc1_gemm" in out
    assert "hottest layers" in out


def test_cli_layers_invalid(capsys):
    from repro.cli import main

    rc = main(["layers", "megatron-22b", "a100:16", "--tp", "8", "--pp", "3",
               "--batch", "16"])
    assert rc == 1
    assert "error" in capsys.readouterr().out
