"""Report-exporter tests (CSV / Markdown / JSON)."""

import csv
import io
import json

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.io.report import (
    result_to_flat_dict,
    results_to_csv,
    results_to_markdown,
    save_results_json,
)
from repro.llm import LLMConfig

LLM = LLMConfig(name="rep-llm", hidden=1024, attn_heads=8, seq_size=512,
                num_blocks=4)
SYS = a100_system(8, hbm_gib=1_000_000)


@pytest.fixture
def results():
    out = []
    for rc in ("none", "full"):
        out.append(
            calculate(
                LLM, SYS,
                ExecutionStrategy(tensor_par=8, pipeline_par=1, data_par=1,
                                  batch=8, recompute=rc),
            )
        )
    return out


def test_flat_dict_contains_all_components(results):
    row = result_to_flat_dict(results[0])
    assert row["llm"] == "rep-llm"
    assert row["feasible"] is True
    assert row["time.fw_pass"] > 0
    assert row["mem.weight"] > 0
    assert row["mem.total"] == pytest.approx(results[0].mem1.total)


def test_flat_dict_infeasible_has_null_time():
    bad = calculate(
        LLM, a100_system(8, hbm_gib=0.0001),
        ExecutionStrategy(tensor_par=8, pipeline_par=1, data_par=1, batch=8),
    )
    row = result_to_flat_dict(bad)
    assert row["feasible"] is False
    assert row["batch_time_s"] is None
    assert row["infeasibility"]


def test_csv_parses_back(results):
    text = results_to_csv(results)
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == 2
    assert rows[0]["llm"] == "rep-llm"
    assert float(rows[0]["sample_rate"]) > 0


def test_csv_requires_rows():
    with pytest.raises(ValueError):
        results_to_csv([])


def test_markdown_table_shape(results):
    md = results_to_markdown(results)
    lines = md.splitlines()
    assert lines[0].startswith("| strategy |")
    assert lines[1].startswith("|---")
    assert len(lines) == 2 + len(results)


def test_markdown_unknown_column_rejected(results):
    with pytest.raises(KeyError):
        results_to_markdown(results, columns=("nope",))


def test_json_roundtrip(results, tmp_path):
    path = save_results_json(results, tmp_path / "out.json")
    data = json.loads(path.read_text())
    assert len(data) == 2
    assert data[0]["strategy"] == results[0].strategy_name
