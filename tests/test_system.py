"""System composition and preset tests (paper §2.2)."""

import pytest

from repro.hardware import (
    MemoryTier,
    Network,
    System,
    a100_system,
    ddr5_offload,
    h100_system,
)
from repro.units import GB, GiB, TB


def test_a100_preset_shape():
    s = a100_system(4096)
    assert s.num_procs == 4096
    assert s.mem1.capacity == 80 * GiB
    assert s.mem1.bandwidth == 2 * TB
    assert [n.name for n in s.networks] == ["nvlink3", "ib-hdr"]
    assert s.mem2 is None


def test_h100_preset_with_offload():
    s = h100_system(512, hbm_gib=40, offload=ddr5_offload(512))
    assert s.mem1.capacity == 40 * GiB
    assert s.mem1.bandwidth == 3 * TB
    assert s.mem2 is not None
    assert s.mem2.capacity == 512 * GiB
    assert s.mem2.bandwidth == 100 * GB


def test_network_for_span_picks_innermost():
    s = a100_system(4096)
    assert s.network_for_span(2).name == "nvlink3"
    assert s.network_for_span(8).name == "nvlink3"
    assert s.network_for_span(9).name == "ib-hdr"
    assert s.network_for_span(4096).name == "ib-hdr"


def test_network_for_span_validates():
    s = a100_system(64)
    with pytest.raises(ValueError):
        s.network_for_span(0)
    with pytest.raises(ValueError):
        s.network_for_span(65)


def test_nvlink_domain_size_configurable():
    s = a100_system(4096, nvlink_size=32)
    assert s.network_for_span(32).name == "nvlink3"
    assert s.network_for_span(33).name == "ib-hdr"


def test_with_num_procs_grows_outer_network():
    s = a100_system(64).with_num_procs(8192)
    assert s.num_procs == 8192
    assert s.networks[-1].size >= 8192
    assert s.network_for_span(8192).name == "ib-hdr"


def test_with_mem1_capacity():
    s = a100_system(8).with_mem1_capacity(160 * GiB)
    assert s.mem1.capacity == 160 * GiB
    assert s.mem1.bandwidth == 2 * TB  # unchanged


def test_with_mem2():
    tier = ddr5_offload(256)
    s = a100_system(8).with_mem2(tier)
    assert s.has_offload
    assert s.with_mem2(None).mem2 is None


def test_networks_must_be_ordered():
    tiny = Network(name="a", size=8, bandwidth=1 * GB)
    big = Network(name="b", size=64, bandwidth=1 * GB)
    hbm = MemoryTier(name="m", capacity=1 * GiB, bandwidth=1 * TB)
    from repro.hardware import A100

    with pytest.raises(ValueError, match="innermost-first"):
        System(name="bad", num_procs=64, processor=A100, mem1=hbm, networks=(big, tiny))


def test_outer_network_must_span_system():
    small = Network(name="a", size=8, bandwidth=1 * GB)
    hbm = MemoryTier(name="m", capacity=1 * GiB, bandwidth=1 * TB)
    from repro.hardware import A100

    with pytest.raises(ValueError, match="does not span"):
        System(name="bad", num_procs=64, processor=A100, mem1=hbm, networks=(small,))


def test_nvlink_processor_tax_larger_than_ib():
    s = a100_system(64)
    nvl, ib = s.networks
    assert nvl.processor_usage > ib.processor_usage  # 15% vs 2% (paper §6)


def test_single_proc_system_allowed():
    s = a100_system(1)
    assert s.network_for_span(1).name == "nvlink3"


def test_v100_preset():
    from repro.hardware import v100_system

    s = v100_system(64)
    assert s.processor.name == "v100"
    assert s.mem1.capacity == 32 * GiB
    assert s.networks[0].name == "nvlink2"


def test_h200_preset():
    from repro.hardware import h200_system

    s = h200_system(64)
    assert s.mem1.capacity == 141 * GiB
    assert s.mem1.bandwidth == 4.8 * TB


def test_generation_ordering_holds():
    from repro.hardware import H200, V100, A100, H100

    assert V100.matrix_flops < A100.matrix_flops <= H100.matrix_flops
    assert H200.matrix_flops == H100.matrix_flops  # same compute die
