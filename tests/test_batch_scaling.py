"""Batch-size scaling analysis tests."""

import math

import pytest

from repro.analysis import batch_sweep_fixed, batch_sweep_searched
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import LLMConfig
from repro.search import SearchOptions

LLM = LLMConfig(name="bs-llm", hidden=2048, attn_heads=16, seq_size=1024,
                num_blocks=8)
SYS = a100_system(16, hbm_gib=1_000_000)

STRAT = ExecutionStrategy(tensor_par=4, pipeline_par=4, data_par=1, batch=16,
                          microbatch=1, recompute="full")
OPTS = SearchOptions(
    recompute=("full",),
    seq_par_modes=((False, False, False),),
    tp_overlap=("none",),
    dp_overlap=(False,),
    optimizer_sharding=(True,),
    fused_activations=(False,),
    max_microbatch=4,
)


def test_fixed_sweep_reports_each_batch():
    points = batch_sweep_fixed(LLM, SYS, STRAT, [4, 8, 16, 32])
    assert [p.batch for p in points] == [4, 8, 16, 32]
    assert all(p.feasible for p in points)


def test_fixed_sweep_bubble_amortizes_with_batch():
    # More microbatches per flush -> higher MFU (bubble amortized).
    points = batch_sweep_fixed(LLM, SYS, STRAT, [4, 16, 64])
    mfus = [p.mfu for p in points]
    assert mfus == sorted(mfus)


def test_fixed_sweep_flags_indivisible_batches():
    # d=1 here, so any batch works; force d=4 and an odd batch.
    strat = ExecutionStrategy(tensor_par=4, pipeline_par=1, data_par=4,
                              batch=16, microbatch=1)
    points = batch_sweep_fixed(LLM, SYS, strat, [16, 18])
    assert points[0].feasible
    assert not points[1].feasible
    assert math.isinf(points[1].batch_time)


def test_fixed_sweep_validates_batch():
    with pytest.raises(ValueError):
        batch_sweep_fixed(LLM, SYS, STRAT, [0])


def test_searched_sweep_never_worse_than_fixed():
    batches = [8, 16, 32]
    fixed = batch_sweep_fixed(LLM, SYS, STRAT, batches)
    searched = batch_sweep_searched(LLM, SYS, batches, OPTS)
    for f, s in zip(fixed, searched):
        assert s.sample_rate >= f.sample_rate - 1e-9


def test_searched_sweep_handles_infeasible():
    tiny = a100_system(16, hbm_gib=0.001)
    points = batch_sweep_searched(LLM, tiny, [8], OPTS)
    assert not points[0].feasible
    assert points[0].sample_rate == 0.0


def test_searched_sweep_validates_batch():
    with pytest.raises(ValueError):
        batch_sweep_searched(LLM, SYS, [-1], OPTS)
