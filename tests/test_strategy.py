"""Execution-strategy validation tests (paper §2.3, Table 1 ranges)."""

import pytest

from repro.execution import (
    ExecutionStrategy,
    StrategyError,
    divisors,
    factorizations,
)
from repro.hardware import a100_system, ddr5_offload
from repro.llm import GPT3_175B, LLMConfig

SYS64 = a100_system(64)


def strat(**kw):
    base = dict(tensor_par=8, pipeline_par=8, data_par=1, batch=64, microbatch=1)
    base.update(kw)
    return ExecutionStrategy(**base)


def test_valid_megatron_strategy_passes():
    strat().validate(GPT3_175B, SYS64)


def test_processor_count_must_match():
    with pytest.raises(StrategyError, match="system size"):
        strat(data_par=2).validate(GPT3_175B, SYS64)


def test_tp_cannot_exceed_heads():
    llm = LLMConfig(name="x", hidden=256, attn_heads=4, seq_size=64, num_blocks=64)
    with pytest.raises(StrategyError, match="attn_heads"):
        strat().validate(llm, SYS64)


def test_tp_must_divide_shape():
    llm = LLMConfig(name="x", hidden=768, attn_heads=12, seq_size=64, num_blocks=8)
    s = ExecutionStrategy(tensor_par=8, pipeline_par=8, data_par=1, batch=8)
    with pytest.raises(StrategyError, match="divide"):
        s.validate(llm, SYS64)


def test_pp_cannot_exceed_blocks():
    llm = LLMConfig(name="x", hidden=512, attn_heads=8, seq_size=64, num_blocks=4)
    with pytest.raises(StrategyError, match="num_blocks"):
        strat().validate(llm, SYS64)


def test_dp_must_divide_batch():
    with pytest.raises(StrategyError, match="divide"):
        strat(tensor_par=8, pipeline_par=4, data_par=2, batch=63).validate(
            GPT3_175B, SYS64
        )


def test_microbatch_must_divide_local_batch():
    with pytest.raises(StrategyError, match="microbatch"):
        strat(microbatch=3).validate(GPT3_175B, SYS64)


def test_interleaving_range():
    # blocks/p = 96/8 = 12; v=13 is out of range.
    with pytest.raises(StrategyError, match="interleaving"):
        strat(pp_interleaving=13).validate(GPT3_175B, SYS64)
    strat(pp_interleaving=12).validate(GPT3_175B, SYS64)


def test_interleaving_requires_pp():
    s = strat(tensor_par=8, pipeline_par=1, data_par=8, pp_interleaving=2)
    with pytest.raises(StrategyError, match="requires pipeline"):
        s.validate(GPT3_175B, SYS64)


def test_tp_redo_requires_seq_par():
    with pytest.raises(StrategyError, match="tp_redo_sp"):
        strat(tp_redo_sp=True).validate(GPT3_175B, SYS64)


def test_pp_rs_ag_requires_seq_par():
    with pytest.raises(StrategyError, match="pp_rs_ag"):
        strat(pp_rs_ag=True).validate(GPT3_175B, SYS64)


def test_seq_par_needs_divisible_seq():
    llm = LLMConfig(name="x", hidden=512, attn_heads=8, seq_size=100, num_blocks=8)
    with pytest.raises(StrategyError, match="seq_par"):
        strat(seq_par=True).validate(llm, SYS64)


def test_offload_requires_tier2():
    with pytest.raises(StrategyError, match="tier-2"):
        strat(weight_offload=True).validate(GPT3_175B, SYS64)
    sys2 = a100_system(64, offload=ddr5_offload(512))
    strat(weight_offload=True).validate(GPT3_175B, sys2)


def test_inference_forbids_recompute():
    with pytest.raises(StrategyError, match="inference"):
        strat(training=False, recompute="full").validate(GPT3_175B, SYS64)


def test_unknown_modes_rejected():
    with pytest.raises(StrategyError, match="recompute"):
        strat(recompute="sometimes").validate(GPT3_175B, SYS64)
    with pytest.raises(StrategyError, match="tp_overlap"):
        strat(tp_overlap="magic").validate(GPT3_175B, SYS64)


def test_is_valid_wrapper():
    assert strat().is_valid(GPT3_175B, SYS64)
    assert not strat(data_par=2).is_valid(GPT3_175B, SYS64)


def test_derived_quantities():
    s = strat(tensor_par=8, pipeline_par=4, data_par=2, batch=64, microbatch=2)
    assert s.num_procs == 64
    assert s.local_batch == 32
    assert s.num_microbatches == 16


def test_blocks_per_stage_and_chunk():
    s = strat(pipeline_par=8, pp_interleaving=3)
    assert s.blocks_per_stage(96) == 12
    assert s.blocks_per_chunk(96) == 4
    # Uneven division rounds up (the busiest stage governs).
    assert strat(pipeline_par=7, tensor_par=8, data_par=1).blocks_per_stage(96) == 14


def test_evolve_returns_modified_copy():
    s = strat()
    s2 = s.evolve(recompute="full")
    assert s2.recompute == "full"
    assert s.recompute == "none"


def test_dict_roundtrip():
    s = strat(seq_par=True, tp_redo_sp=True, recompute="attn_only")
    assert ExecutionStrategy.from_dict(s.to_dict()) == s


def test_short_name():
    assert strat().short_name() == "t8p8d1m1v1"


def test_factorizations_complete_and_exact():
    triples = list(factorizations(12))
    assert all(t * p * d == 12 for t, p, d in triples)
    assert len(triples) == len(set(triples))
    # d(12) applied twice: sum over divisors t of d(12/t) = 18 triples.
    assert len(triples) == 18


def test_factorizations_of_one():
    assert list(factorizations(1)) == [(1, 1, 1)]


def test_factorizations_rejects_nonpositive():
    with pytest.raises(ValueError):
        list(factorizations(0))


def test_divisors():
    assert divisors(1) == [1]
    assert divisors(12) == [1, 2, 3, 4, 6, 12]
    assert divisors(64) == [1, 2, 4, 8, 16, 32, 64]
    with pytest.raises(ValueError):
        divisors(0)


def test_offloading_property():
    assert not strat().offloading
    assert strat(activation_offload=True).offloading
