"""Adaptive best-bound-first tiling, floor guards, and the online surrogate.

The load-bearing invariants of ISSUE 10's adaptive search layer:

* ``batch_lower_bounds`` is **bit-identical** to the scalar
  ``roofline_lower_bound`` for every feasible memory bucket (property-based
  over random candidate mixes — this is what makes tiled skipping sound);
* the tiled best-bound-first path produces bit-identical survivors and an
  identical top-k retention for *any* tile size and *any* seed order —
  tiling and seeding are speed hints, never correctness inputs;
* non-finite rate floors (a gossiped k-th best from an empty heap arrives
  as ``-inf`` or ``nan``) are ignored everywhere they can enter: the
  threshold converters, :class:`AdaptivePlan`, the fabric chunk evaluator
  and the coordinator's gossip;
* the surrogate changes nothing but evaluation order: on/off runs retain
  the same top-k, and its state survives a round-trip through the service
  result cache.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import clear_caches
from repro.engine import batch as engine_batch
from repro.engine.batch import AdaptivePlan, EvalBatch, run_batch
from repro.engine.bounds import (
    batch_lower_bounds,
    prune_threshold_for_rate,
    strict_prune_threshold_for_rate,
)
from repro.engine.context import EvalContext
from repro.engine.profile import profile_block, profile_key
from repro.engine.stages import fill_scalars, stage_memory
from repro.engine.bounds import roofline_lower_bound
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import TINY_TEST
from repro.search import SearchOptions, search
from repro.search import surrogate as sur_mod
from repro.search.surrogate import (
    MIN_OBSERVATIONS,
    N_FEATURES,
    RateSurrogate,
    configure_surrogate_store,
    load_surrogate,
    seed_sample_size,
    surrogate_key,
)
from repro.service.cache import ResultCache

SYS64 = a100_system(64)

_random_strategy = st.builds(
    ExecutionStrategy,
    tensor_par=st.sampled_from([1, 2, 4, 8]),
    pipeline_par=st.sampled_from([1, 2, 4]),
    data_par=st.sampled_from([1, 2, 4, 8]),
    batch=st.sampled_from([32, 64]),
    microbatch=st.sampled_from([1, 2, 4]),
    pp_interleaving=st.sampled_from([1, 2]),
    seq_par=st.booleans(),
    tp_redo_sp=st.booleans(),
    tp_overlap=st.sampled_from(["none", "ring"]),
    dp_overlap=st.booleans(),
    optimizer_sharding=st.booleans(),
    recompute=st.sampled_from(["none", "attn_only", "full"]),
    training=st.booleans(),
)


def _scalar_bound(llm, system, strategy) -> float | None:
    """The scalar fast path's bound, exactly as the engine computes it."""
    try:
        strategy.validate(llm, system)
    except Exception:
        return None
    ctx = EvalContext(llm, system, strategy)
    fill_scalars(ctx)
    ctx.prof = profile_block(llm, system, *profile_key(strategy))
    stage_memory(ctx)
    if ctx.error is not None:
        return None
    return roofline_lower_bound(ctx)


def _build_batch(strategies) -> EvalBatch:
    cols = engine_batch.columns_from_strategies(strategies)
    return EvalBatch.from_columns(TINY_TEST, SYS64, cols)


def _top_retention(eb: EvalBatch, k: int) -> list[tuple[int, float]]:
    """The search's exact top-k retention over an evaluated batch."""
    if eb.n_s == 0 or k <= 0:
        return []
    srank = eb.stream_rank[eb.sidx]
    keep = np.lexsort((srank, -eb.rate_s))[:k]
    return sorted(
        (int(eb.sidx[i]), float(eb.rate_s[i])) for i in keep
    )


# -- threshold guards (satellite: non-finite floors) -------------------------


@pytest.mark.parametrize("floor", [math.nan, -math.inf, -1.0, 0.0])
@pytest.mark.parametrize(
    "fn", [prune_threshold_for_rate, strict_prune_threshold_for_rate]
)
def test_threshold_nonfinite_floor_never_prunes(fn, floor):
    """nan/-inf/non-positive floors must disable pruning, not prune it all.

    An empty or all-infeasible top-k heap reports its k-th best rate as
    ``-inf`` (or ``nan`` after degenerate arithmetic); treating either as a
    real floor would produce a threshold of 0 and prune the entire space.
    """
    assert fn(64.0, floor) == math.inf


def test_strict_threshold_excludes_floor_ties():
    floor = 8.0
    t = strict_prune_threshold_for_rate(64.0, floor)
    assert 64.0 / t < floor  # strictly below: a tie can never be pruned
    # and it is the *smallest* such time (one step down ties or beats)
    assert 64.0 / math.nextafter(t, 0.0) >= floor


def test_threshold_positive_infinite_floor():
    # rate floor +inf: nothing can beat it, threshold collapses to inf
    # via the t <= 0 branch (batch / inf == 0).
    assert prune_threshold_for_rate(64.0, math.inf) == math.inf
    assert strict_prune_threshold_for_rate(64.0, math.inf) == math.inf


@pytest.mark.parametrize("floor", [math.nan, -math.inf, math.inf, -5.0])
def test_adaptive_plan_ignores_nonfinite_floor(floor):
    """A poisoned AdaptivePlan.floor_rate must not change the survivors."""
    strategies = [
        ExecutionStrategy(
            tensor_par=t, pipeline_par=p, data_par=d, batch=32,
            microbatch=m, recompute=rc,
        )
        for t, p, d in [(1, 1, 1), (2, 1, 2), (4, 2, 1), (1, 2, 4)]
        for m in (1, 2)
        for rc in ("none", "full")
    ]
    clear_caches()
    ref = _build_batch(strategies)
    run_batch(ref, adaptive=AdaptivePlan(top_k=3, floor_rate=0.0))
    clear_caches()
    poisoned = _build_batch(strategies)
    run_batch(poisoned, adaptive=AdaptivePlan(top_k=3, floor_rate=floor))
    assert ref.n_s == poisoned.n_s
    assert np.array_equal(ref.sidx, poisoned.sidx)
    assert np.array_equal(ref.rate_s, poisoned.rate_s)
    assert _top_retention(ref, 3) == _top_retention(poisoned, 3)


# -- property: vectorized bounds == scalar bounds ----------------------------


@given(strategies=st.lists(_random_strategy, min_size=1, max_size=30))
@settings(max_examples=25, deadline=None)
def test_batch_lower_bounds_bit_identical_to_scalar(strategies):
    """Every feasible bucket's vectorized bound equals the scalar bound."""
    clear_caches()
    eb = _build_batch(strategies)
    engine_batch.batch_validate(eb)
    engine_batch.batch_profile(eb)
    engine_batch.batch_memory(eb)
    bounds = batch_lower_bounds(eb)
    checked = 0
    for j in range(int(eb.vidx.shape[0])):
        bkt = int(eb.bid[j])
        if not bool(eb.b["ok"][bkt]):
            continue
        want = _scalar_bound(TINY_TEST, SYS64, strategies[int(eb.vidx[j])])
        assert want is not None
        # Bit-identical, not approximately equal: pruning soundness rests
        # on the vectorized bound reproducing the scalar float exactly.
        assert bounds[bkt] == want
        checked += 1
    assert checked or not any(
        _scalar_bound(TINY_TEST, SYS64, s) is not None for s in strategies
    )


# -- property: any tiling, any seed == untiled -------------------------------


@given(
    strategies=st.lists(_random_strategy, min_size=1, max_size=30),
    tile=st.integers(min_value=1, max_value=40),
    k=st.sampled_from([1, 3, 10]),
    seed=st.lists(
        st.integers(min_value=-5, max_value=60), min_size=0, max_size=12
    ),
)
@settings(max_examples=25, deadline=None)
def test_adaptive_any_tiling_bit_identical(strategies, tile, k, seed):
    """Tiled best-bound-first == untiled, for any tile size and seed order.

    The adaptive run may prune buckets, but every candidate it keeps must
    carry bit-identical columns, and the search's top-k retention over its
    survivors must equal the retention over the full (untiled) survivor
    set — including rate ties, which the strict threshold must never prune.
    """
    clear_caches()
    full = _build_batch(strategies)
    run_batch(full)  # untiled: every feasible candidate priced
    clear_caches()
    adap = _build_batch(strategies)
    plan = AdaptivePlan(
        top_k=k, tile_buckets=tile, seed_fn=lambda eb: seed
    )
    run_batch(adap, adaptive=plan)

    # Survivor accounting: pruned + surviving == all feasible.
    assert adap.n_s + adap.n_pruned == full.n_s

    # Surviving candidates carry bit-identical rates (and thus identical
    # comm/assembly columns upstream of them).
    pos = np.searchsorted(full.sidx, adap.sidx)
    assert np.array_equal(full.sidx[pos], adap.sidx)
    assert np.array_equal(full.rate_s[pos], adap.rate_s)
    for key in adap.cm:
        assert np.array_equal(full.cm[key][pos], adap.cm[key]), key
    for key in adap.asm:
        assert np.array_equal(full.asm[key][pos], adap.asm[key]), key

    # The retention the search applies is identical.
    assert _top_retention(full, k) == _top_retention(adap, k)


# -- surrogate: speed-only, persistent ---------------------------------------


def _tiny_search(**kw):
    return search(
        TINY_TEST, SYS64, 64, SearchOptions(), top_k=5, workers=0,
        keep_rates=False, columnar=True, **kw,
    )


def test_surrogate_on_off_top_k_identical():
    sur_mod._reset_for_tests()
    try:
        clear_caches()
        off = _tiny_search(surrogate=False)
        clear_caches()
        on = _tiny_search(surrogate=True)  # untrained: falls back to bounds
        clear_caches()
        trained = _tiny_search(surrogate=True)  # now seeded from run 2
        for other in (on, trained):
            assert len(off.top) == len(other.top)
            for (s1, r1), (s2, r2) in zip(off.top, other.top):
                assert s1 == s2
                assert r1 == r2
    finally:
        sur_mod._reset_for_tests()


def test_surrogate_negative_prune_seed_disables_seeding():
    sur_mod._reset_for_tests()
    try:
        clear_caches()
        _tiny_search()  # train
        clear_caches()
        seeded = _tiny_search(collect_stats=True)
        clear_caches()
        unseeded = _tiny_search(prune_seed=-1, collect_stats=True)
        assert unseeded.stats.engine.surrogate_seeded == 0
        for (s1, r1), (s2, r2) in zip(seeded.top, unseeded.top):
            assert s1 == s2 and r1 == r2
    finally:
        sur_mod._reset_for_tests()


def test_surrogate_persists_through_result_cache(tmp_path):
    sur_mod._reset_for_tests()
    try:
        cache = ResultCache(cache_dir=tmp_path)
        configure_surrogate_store(cache)
        clear_caches()
        _tiny_search()
        key = surrogate_key(TINY_TEST, SYS64, 64, SearchOptions())
        payload = cache.get(key)
        assert payload is not None
        sur = RateSurrogate.from_payload(payload)
        assert sur is not None and sur.count > 0

        # A fresh process (cleared memory registry) reloads from the store.
        sur_mod._MEMORY.clear()
        reloaded = load_surrogate(key)
        assert reloaded.count == sur.count
        assert np.array_equal(reloaded.xtx, sur.xtx)
        assert np.array_equal(reloaded.xty, sur.xty)
    finally:
        sur_mod._reset_for_tests()


def test_surrogate_payload_roundtrip_and_rejects_garbage():
    rng = np.random.default_rng(7)
    sur = RateSurrogate()
    feats = rng.normal(size=(MIN_OBSERVATIONS, N_FEATURES))
    rates = np.abs(rng.normal(size=MIN_OBSERVATIONS)) + 0.1
    sur.observe(feats, rates)
    assert sur.trained
    back = RateSurrogate.from_payload(sur.to_payload())
    assert back is not None
    assert back.count == sur.count
    assert np.array_equal(back.xtx, sur.xtx)
    assert np.array_equal(back.xty, sur.xty)
    assert RateSurrogate.from_payload(None) is None
    assert RateSurrogate.from_payload({"version": 99}) is None
    assert RateSurrogate.from_payload({"version": 1, "xtx": [[1.0]]}) is None


def test_surrogate_nonpositive_rates_carry_no_signal():
    sur = RateSurrogate()
    feats = np.ones((4, N_FEATURES))
    sur.observe(feats, np.array([0.0, -1.0, math.nan, -math.inf]))
    assert sur.count == 0
    assert not sur.trained


def test_seed_sample_size_semantics():
    assert seed_sample_size(-1, 10) == 0
    assert seed_sample_size(0, 10) == max(64, 10)
    assert seed_sample_size(0, 100) == 100
    assert seed_sample_size(7, 10) == 10
    assert seed_sample_size(200, 10) == 200
