"""Transformer-block decomposition tests (paper Fig. 1, §2.1).

These pin the block against the closed forms the literature gives for
Megatron blocks: forward FLOPs ``24*b*s*h^2 + 4*b*s^2*h`` and activation
stash ``s*b*h*(34 + 5*a*s/h)`` bytes at fp16 (Korthikanti et al. '22).
"""

import pytest

from repro.llm import LLMConfig, TINY_TEST, build_block
from repro.llm.blocks import Collective
from repro.llm.layers import Engine, Role


CFG = LLMConfig(name="unit", hidden=1024, attn_heads=16, seq_size=512, num_blocks=4)


def closed_form_fw_flops(cfg, b):
    h, s = cfg.hidden, cfg.seq_size
    return 24 * b * s * h * h + 4 * b * s * s * h


def closed_form_stash(cfg, b):
    h, s, a = cfg.hidden, cfg.seq_size, cfg.attn_heads
    return s * b * h * (34 + 5 * a * s / h)


def test_forward_flops_match_closed_form():
    b = 2
    block = build_block(CFG, microbatch=b, tensor_par=1)
    # GEMM/batched-MM flops dominate; element-wise layers add a few percent.
    gemm_flops = sum(
        l.flops_fw for l in block.layers if l.engine is Engine.MATRIX
    )
    assert gemm_flops == pytest.approx(closed_form_fw_flops(CFG, b), rel=1e-12)


def test_backward_flops_are_twice_forward_for_gemms():
    block = build_block(CFG, microbatch=1, tensor_par=1)
    for l in block.layers:
        if l.engine is Engine.MATRIX:
            assert l.flops_bw == pytest.approx(2 * l.flops_fw)


def test_stash_matches_korthikanti_formula():
    b = 2
    block = build_block(CFG, microbatch=b, tensor_par=1)
    assert block.stash_bytes("none") == pytest.approx(closed_form_stash(CFG, b))


def test_stash_with_seq_par_divides_all_terms():
    b, t = 2, 4
    block = build_block(CFG, microbatch=b, tensor_par=t, seq_par=True)
    assert block.stash_bytes("none") == pytest.approx(closed_form_stash(CFG, b) / t)


def test_selective_recompute_drops_attention_square_terms():
    b = 2
    block = build_block(CFG, microbatch=b, tensor_par=1)
    h, s, a = CFG.hidden, CFG.seq_size, CFG.attn_heads
    expected = s * b * h * 34  # the 5*a*s^2*b bytes are recomputed
    assert block.stash_bytes("attn_only") == pytest.approx(expected)


def test_full_recompute_keeps_only_block_input():
    b = 2
    block = build_block(CFG, microbatch=b, tensor_par=1)
    assert block.stash_bytes("full") == pytest.approx(
        b * CFG.seq_size * CFG.hidden * 2
    )


def test_recompute_flops_ordering():
    block = build_block(CFG, microbatch=1, tensor_par=1)
    none = block.recompute_flops("none")
    attn = block.recompute_flops("attn_only")
    full = block.recompute_flops("full")
    assert none == 0
    assert 0 < attn < full
    assert full == block.flops_fw()


def test_recompute_unknown_mode_raises():
    block = build_block(CFG, microbatch=1, tensor_par=1)
    with pytest.raises(ValueError):
        block.stash_bytes("full" if False else "bogus")
    with pytest.raises(ValueError):
        block.recompute_flops("bogus")


def test_tensor_parallel_shards_flops_conservatively():
    base = build_block(CFG, microbatch=1, tensor_par=1)
    for t in (2, 4, 8, 16):
        shard = build_block(CFG, microbatch=1, tensor_par=t)
        gemm_base = sum(l.flops_fw for l in base.layers if l.engine is Engine.MATRIX)
        gemm_shard = sum(l.flops_fw for l in shard.layers if l.engine is Engine.MATRIX)
        assert gemm_shard * t == pytest.approx(gemm_base, rel=1e-12)


def test_tensor_parallel_shards_weights():
    base = build_block(CFG, microbatch=1, tensor_par=1)
    shard = build_block(CFG, microbatch=1, tensor_par=4)
    # Weight matrices shard by t; LayerNorm parameters replicate.
    assert shard.weight_bytes() < base.weight_bytes()
    assert shard.weight_bytes() > base.weight_bytes() / 4  # replicated norms


def test_tp_requires_divisible_shapes():
    with pytest.raises(ValueError, match="divide"):
        build_block(CFG, microbatch=1, tensor_par=3)


def test_microbatch_must_be_positive():
    with pytest.raises(ValueError, match="microbatch"):
        build_block(CFG, microbatch=0, tensor_par=1)


def test_comm_schedule_without_tp_is_empty():
    block = build_block(CFG, microbatch=1, tensor_par=1)
    assert block.tp_comm_fw == ()
    assert block.tp_comm_bw == ()


def test_comm_schedule_megatron_two_allreduces():
    block = build_block(CFG, microbatch=1, tensor_par=4)
    assert [c.op for c in block.tp_comm_fw] == ["all_reduce", "all_reduce"]
    assert [c.op for c in block.tp_comm_bw] == ["all_reduce", "all_reduce"]
    bsh = 1 * CFG.seq_size * CFG.hidden * 2
    assert all(c.nbytes == bsh for c in block.tp_comm_fw)


def test_comm_schedule_seq_par_uses_rs_ag_pairs():
    block = build_block(CFG, microbatch=1, tensor_par=4, seq_par=True)
    fw_ops = [c.op for c in block.tp_comm_fw]
    assert fw_ops.count("all_gather") == 2
    assert fw_ops.count("reduce_scatter") == 2


def test_tp_redo_sp_adds_backward_all_gather():
    plain = build_block(CFG, microbatch=1, tensor_par=4, seq_par=True)
    redo = build_block(CFG, microbatch=1, tensor_par=4, seq_par=True, tp_redo_sp=True)
    assert len(redo.tp_comm_bw) == len(plain.tp_comm_bw) + 1


def test_fused_activations_reduce_stash_and_traffic():
    plain = build_block(CFG, microbatch=1, tensor_par=1)
    fused = build_block(CFG, microbatch=1, tensor_par=1, fused_activations=True)
    assert fused.stash_bytes("none") < plain.stash_bytes("none")
    assert sum(l.traffic_fw for l in fused.layers) < sum(
        l.traffic_fw for l in plain.layers
    )
    # Fusion never changes the math being done.
    assert fused.flops_fw() == pytest.approx(plain.flops_fw())


def test_collective_validation():
    with pytest.raises(ValueError, match="unknown collective"):
        Collective("all_to_all", 10.0)
    with pytest.raises(ValueError, match="non-negative"):
        Collective("all_reduce", -1.0)


def test_layer_roles_present():
    block = build_block(TINY_TEST, microbatch=1, tensor_par=1)
    roles = {l.role for l in block.layers}
    assert {
        Role.NORM,
        Role.GEMM,
        Role.BATCH_MM,
        Role.SOFTMAX,
        Role.DROPOUT,
        Role.ACTIVATION,
        Role.ADD,
    } <= roles


def test_pp_activation_bytes_sharded_with_seq_par():
    plain = build_block(CFG, microbatch=1, tensor_par=4)
    sp = build_block(CFG, microbatch=1, tensor_par=4, seq_par=True)
    assert sp.pp_activation_bytes == pytest.approx(plain.pp_activation_bytes / 4)
