"""CLI coverage for the serving co-design verbs."""

import json

from repro.cli import main

ARGS = [
    "tiny-test", "h100:4:8",
    "--rate", "20", "--prompt-len", "64:128", "--output-len", "16:32",
    "--requests", "40", "--seed", "1",
]


def test_serve_search_smoke(capsys):
    rc = main(["serve-search", *ARGS, "--ttft-p95", "0.005",
               "--tpot-p95", "0.001", "--stats"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "deployment" in out and "goodput/s" in out
    assert "candidate plans" in out  # --stats summary


def test_serve_search_impossible_slo_nonzero(capsys):
    rc = main(["serve-search", *ARGS, "--ttft-p95", "1e-300"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "no deployment meets the SLO" in out


def test_search_workload_serve_dispatches(capsys):
    rc = main(["search", ARGS[0], ARGS[1], "--workload", "serve",
               *ARGS[2:], "--top", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "goodput/s" in out  # serving table, not the training one
    assert "MFU" not in out


def test_serve_search_no_disagg(capsys):
    rc = main(["serve-search", *ARGS, "--no-disagg"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "pre[" not in out


def test_serve_search_trace_and_events(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    events = tmp_path / "events.jsonl"
    rc = main(["serve-search", *ARGS, "--trace", str(trace),
               "--events", str(events)])
    assert rc == 0
    capsys.readouterr()
    spans = json.loads(trace.read_text())
    assert spans  # at least the serve_search span
    kinds = [json.loads(line).get("kind")
             for line in events.read_text().splitlines()]
    assert "serve.start" in kinds and "serve.done" in kinds


def test_serve_search_checkpoint_resume(tmp_path, capsys):
    journal = tmp_path / "serve.jsonl"
    rc1 = main(["serve-search", *ARGS, "--checkpoint", str(journal)])
    first = capsys.readouterr().out
    assert rc1 == 0 and journal.exists()
    rc2 = main(["serve-search", *ARGS, "--checkpoint", str(journal),
                "--resume"])
    captured = capsys.readouterr()
    assert rc2 == 0
    assert "resumed" in captured.err
    # The resumed table is identical to the fresh one.
    assert captured.out.splitlines()[-5:] == first.splitlines()[-5:]


def test_serve_help_disambiguates(capsys):
    try:
        main(["--help"])
    except SystemExit:
        pass
    help_text = capsys.readouterr().out
    assert "serve-search" in help_text
