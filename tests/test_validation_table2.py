"""Validation against the paper's Table 2 (Selene measurements).

The paper validates Calculon against measured batch times on NVIDIA's Selene
for Megatron 22B/175B/530B/1T under (a) full activation recomputation and
(b) sequence parallelism + selective recomputation.  We re-run the same eight
configurations with our re-derived model and require agreement with the
*measured* numbers within a modest band (the paper's own model shows up to
8.9% error; ours is calibrated to a similar envelope — see EXPERIMENTS.md).
"""

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import get_preset

# (llm preset, gpus, t, p, d, global batch) — the Selene run shapes of
# Korthikanti et al. '22, which Table 2 reproduces.
RUNS = [
    ("megatron-22b", 8, 8, 1, 1, 4),
    ("gpt3-175b", 64, 8, 8, 1, 64),
    ("turing-530b", 280, 8, 35, 1, 280),
    ("megatron-1t", 512, 8, 64, 1, 512),
]

SELENE_FULL = {"megatron-22b": 1.42, "gpt3-175b": 18.13, "turing-530b": 49.05,
               "megatron-1t": 94.42}
SELENE_SEQSEL = {"megatron-22b": 1.10, "gpt3-175b": 13.75, "turing-530b": 37.83,
                 "megatron-1t": 71.49}
PAPER_CALC_FULL = {"megatron-22b": 1.40, "gpt3-175b": 18.03, "turing-530b": 49.89,
                   "megatron-1t": 90.08}
PAPER_CALC_SEQSEL = {"megatron-22b": 1.14, "gpt3-175b": 13.64, "turing-530b": 34.47,
                     "megatron-1t": 66.04}

TOLERANCE = 0.15  # relative to the Selene measurement


def best_time(name, n, t, p, d, batch, **kw):
    llm = get_preset(name)
    system = a100_system(n)
    best = None
    for mb in (1, 2, 4):
        if (batch // d) % mb:
            continue
        res = calculate(
            llm,
            system,
            ExecutionStrategy(
                tensor_par=t, pipeline_par=p, data_par=d, batch=batch,
                microbatch=mb, **kw,
            ),
        )
        if res.feasible and (best is None or res.batch_time < best):
            best = res.batch_time
    assert best is not None, f"no feasible microbatch for {name}"
    return best


@pytest.mark.parametrize("name,n,t,p,d,batch", RUNS)
def test_full_recompute_within_band(name, n, t, p, d, batch):
    ours = best_time(name, n, t, p, d, batch, recompute="full")
    selene = SELENE_FULL[name]
    assert abs(ours / selene - 1) < TOLERANCE, (
        f"{name}: predicted {ours:.2f}s vs Selene {selene:.2f}s"
    )


@pytest.mark.parametrize("name,n,t,p,d,batch", RUNS)
def test_seqpar_selective_within_band(name, n, t, p, d, batch):
    ours = best_time(
        name, n, t, p, d, batch,
        recompute="attn_only", seq_par=True, tp_redo_sp=True,
    )
    selene = SELENE_SEQSEL[name]
    assert abs(ours / selene - 1) < TOLERANCE, (
        f"{name}: predicted {ours:.2f}s vs Selene {selene:.2f}s"
    )


def test_seqpar_always_beats_full_recompute():
    """Table 2's structural shape: seq+sel is uniformly faster than full."""
    for name, n, t, p, d, batch in RUNS:
        full = best_time(name, n, t, p, d, batch, recompute="full")
        ss = best_time(
            name, n, t, p, d, batch,
            recompute="attn_only", seq_par=True, tp_redo_sp=True,
        )
        assert ss < full


def test_ordering_matches_model_size():
    """Bigger models take longer on their (proportionally bigger) systems."""
    times = [
        best_time(name, n, t, p, d, batch, recompute="full")
        for name, n, t, p, d, batch in RUNS
    ]
    assert times == sorted(times)


def test_within_paper_model_band():
    """Our model tracks the paper's own Calculon predictions closely."""
    for name, n, t, p, d, batch in RUNS:
        ours = best_time(name, n, t, p, d, batch, recompute="full")
        theirs = PAPER_CALC_FULL[name]
        assert abs(ours / theirs - 1) < 0.15
