"""Checkpoint journal: keys, persistence, mismatch, and resume properties."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import a100_system
from repro.llm import LLMConfig
from repro.search import (
    CheckpointJournal,
    CheckpointMismatch,
    SearchOptions,
    run_key,
    search,
)

LLM = LLMConfig(name="ckpt-llm", hidden=2048, attn_heads=16, seq_size=1024,
                num_blocks=16)
SYS = a100_system(16)


def small_options(**kw):
    base = dict(
        recompute=("full",),
        seq_par_modes=((False, False, False),),
        tp_overlap=("none",),
        dp_overlap=(False,),
        optimizer_sharding=(False,),
        fused_activations=(False,),
        max_microbatch=4,
    )
    base.update(kw)
    return SearchOptions(**base)


# ---------------------------------------------------------------------------
# run_key
# ---------------------------------------------------------------------------

def test_run_key_is_deterministic():
    a = run_key(LLM, SYS, 32, small_options())
    b = run_key(LLM, SYS, 32, small_options())
    assert a == b and len(a) == 64


def test_run_key_sensitive_to_every_input():
    base = run_key(LLM, SYS, 32, small_options())
    other_llm = LLMConfig(name="ckpt-llm", hidden=4096, attn_heads=16,
                          seq_size=1024, num_blocks=16)
    assert run_key(other_llm, SYS, 32, small_options()) != base
    assert run_key(LLM, a100_system(32), 32, small_options()) != base
    assert run_key(LLM, SYS, 64, small_options()) != base
    assert run_key(LLM, SYS, 32, small_options(max_microbatch=2)) != base
    assert run_key(LLM, SYS, 32, small_options(), kind="sweep") != base
    assert run_key(LLM, SYS, 32, small_options(), extra={"top_k": 5}) != base


# ---------------------------------------------------------------------------
# journal persistence
# ---------------------------------------------------------------------------

def test_journal_roundtrip(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = CheckpointJournal.open(path, "key-1", meta={"step": 7})
    journal.record("0", {"n": 3})
    journal.record("1", {"n": 4})

    loaded = CheckpointJournal.load(path)
    assert loaded is not None
    assert loaded.key == "key-1"
    assert loaded.meta == {"step": 7}
    assert loaded.records() == {"0": {"n": 3}, "1": {"n": 4}}
    assert "0" in loaded and "2" not in loaded
    assert len(loaded) == 2
    assert list(loaded.ids()) == ["0", "1"]


def test_journal_file_is_always_complete_jsonl(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = CheckpointJournal.open(path, "key-1")
    journal.record("0", [1.5, 2.5])
    lines = path.read_text().splitlines()
    parsed = [json.loads(line) for line in lines]  # every line parses
    assert parsed[0]["kind"] == "calculon-journal"
    assert parsed[1] == {"kind": "record", "id": "0", "data": [1.5, 2.5]}


def test_resume_key_mismatch_raises(tmp_path):
    path = tmp_path / "j.jsonl"
    CheckpointJournal.open(path, "key-1").record("0", 1)
    with pytest.raises(CheckpointMismatch):
        CheckpointJournal.open(path, "key-2", resume=True)


def test_open_without_resume_starts_over(tmp_path):
    path = tmp_path / "j.jsonl"
    CheckpointJournal.open(path, "key-1").record("0", 1)
    fresh = CheckpointJournal.open(path, "key-1")
    assert len(fresh) == 0
    assert len(CheckpointJournal.load(path)) == 0


def test_resume_missing_file_is_fresh(tmp_path):
    journal = CheckpointJournal.open(tmp_path / "absent.jsonl", "k", resume=True)
    assert len(journal) == 0


def test_resume_adopts_journal_meta(tmp_path):
    path = tmp_path / "j.jsonl"
    CheckpointJournal.open(path, "k", meta={"step": 26})
    resumed = CheckpointJournal.open(path, "k", resume=True, meta={"step": 13})
    assert resumed.meta == {"step": 26}  # the journal's layout wins


def test_load_tolerates_malformed_lines(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = CheckpointJournal.open(path, "k")
    journal.record("0", 1)
    journal.record("1", 2)
    text = path.read_text()
    path.write_text(text + "{not json\n\n" + '{"kind": "mystery"}\n')
    loaded = CheckpointJournal.load(path)
    assert loaded.records() == {"0": 1, "1": 2}


def test_load_headerless_file_is_none(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text('{"kind": "record", "id": "0", "data": 1}\n')
    assert CheckpointJournal.load(path) is None


# ---------------------------------------------------------------------------
# property: record-line order never matters
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    records=st.dictionaries(
        st.text(alphabet="abc0123456789", min_size=1, max_size=4),
        st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=8)),
        max_size=8,
    ),
    seed=st.randoms(use_true_random=False),
)
def test_journal_merge_is_order_independent(tmp_path_factory, records, seed):
    tmp_path = tmp_path_factory.mktemp("journal")
    path = tmp_path / "j.jsonl"
    journal = CheckpointJournal(path, "k", meta={"m": 1})
    for rid, data in records.items():
        journal._records[rid] = data
    journal.flush()

    header, *record_lines = path.read_text().splitlines()
    seed.shuffle(record_lines)
    path.write_text("\n".join([header, *record_lines]) + "\n")

    loaded = CheckpointJournal.load(path)
    assert loaded.records() == records


# ---------------------------------------------------------------------------
# property: resuming after ANY prefix reproduces the full result
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def full_run(tmp_path_factory):
    """One uninterrupted checkpointed search + its journal lines."""
    path = tmp_path_factory.mktemp("ref") / "ref.jsonl"
    result = search(LLM, SYS, batch=32, options=small_options(), workers=0,
                    top_k=5, checkpoint=path)
    return result, path.read_text().splitlines()


@settings(max_examples=6, deadline=None)
@given(data=st.data())
def test_resume_after_any_prefix_is_bit_identical(tmp_path_factory, full_run,
                                                  data):
    ref, lines = full_run
    header, record_lines = lines[0], lines[1:]
    keep = data.draw(
        st.integers(min_value=0, max_value=len(record_lines)), label="prefix"
    )

    # Simulate a run interrupted after `keep` journaled chunks.
    tmp_path = tmp_path_factory.mktemp("resume")
    path = tmp_path / "partial.jsonl"
    path.write_text("\n".join([header, *record_lines[:keep]]) + "\n")

    got = search(LLM, SYS, batch=32, options=small_options(), workers=0,
                 top_k=5, checkpoint=path, resume=True)

    assert got.num_evaluated == ref.num_evaluated
    assert got.num_feasible == ref.num_feasible
    assert np.array_equal(got.sample_rates, ref.sample_rates)
    assert [s.to_dict() for s, _ in got.top] == [s.to_dict() for s, _ in ref.top]
    assert [r.sample_rate for _, r in got.top] == [
        r.sample_rate for _, r in ref.top
    ]
    assert got.best.sample_rate == ref.best.sample_rate
    assert got.stats is not None and got.stats.resumed_chunks == keep
    assert not got.truncated
