"""Consistency-checker tests, including a broad sweep over real outputs."""

import itertools

import pytest

from repro.core import assert_consistent, calculate, check_result
from repro.core.results import (
    MemoryBreakdown,
    OffloadStats,
    PerformanceResult,
    TimeBreakdown,
)
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system, ddr5_offload
from repro.llm import LLMConfig

LLM = LLMConfig(name="cons-llm", hidden=1024, attn_heads=8, seq_size=512,
                num_blocks=8)
BIG = a100_system(8, hbm_gib=1_000_000, offload=ddr5_offload(100_000))


def test_clean_result_passes():
    res = calculate(
        LLM, BIG,
        ExecutionStrategy(tensor_par=2, pipeline_par=2, data_par=2, batch=8,
                          recompute="full"),
    )
    assert check_result(res) == []
    assert_consistent(res)  # must not raise


def test_infeasible_result_rules():
    res = calculate(
        LLM, BIG,
        ExecutionStrategy(tensor_par=2, pipeline_par=2, data_par=3, batch=9),
    )
    assert not res.feasible
    assert check_result(res) == []


def test_hand_built_inconsistency_detected():
    bogus = PerformanceResult(
        llm_name="x", system_name="y", strategy_name="z", batch=8,
        time=TimeBreakdown(fw_pass=1.0, tp_comm_exposed=2.0, tp_comm_total=1.0),
        mem1=MemoryBreakdown(weight=1.0),
        offload=OffloadStats(),
        mfu=0.5,
    )
    problems = check_result(bogus)
    assert any("exposed TP" in p for p in problems)


def test_mfu_bound_detected():
    bogus = PerformanceResult(
        llm_name="x", system_name="y", strategy_name="z", batch=8,
        time=TimeBreakdown(fw_pass=1.0),
        mem1=MemoryBreakdown(weight=1.0),
        offload=OffloadStats(),
        mfu=1.5,
    )
    assert any("MFU" in p for p in check_result(bogus))
    with pytest.raises(AssertionError, match="MFU"):
        assert_consistent(bogus)


def test_sweep_of_real_configurations_all_consistent():
    """Every feasible output across a broad option sweep is internally
    consistent — the tripwire this module exists for."""
    count = 0
    for t, p, rc, sp, osh, dpo, tpo, off in itertools.product(
        (1, 2, 4, 8),
        (1, 2, 4),
        ("none", "attn_only", "full"),
        (False, True),
        (False, True),
        (False, True),
        ("none", "ring"),
        (False, True),
    ):
        d = 8 // (t * p) if t * p <= 8 and 8 % (t * p) == 0 else 0
        if d < 1:
            continue
        if sp and (t == 1 or LLM.seq_size % t):
            continue
        strat = ExecutionStrategy(
            tensor_par=t, pipeline_par=p, data_par=d, batch=8, microbatch=1,
            recompute=rc, seq_par=sp, tp_redo_sp=sp, optimizer_sharding=osh,
            dp_overlap=dpo, tp_overlap=tpo,
            weight_offload=off, activation_offload=off, optimizer_offload=off,
        )
        res = calculate(LLM, BIG, strat)
        if res.feasible:
            assert_consistent(res)
            count += 1
    assert count > 100  # the sweep genuinely exercised many configurations


def test_debug_check_env_flag(monkeypatch):
    """REPRO_DEBUG_CHECK wires the checker into every calculate() call."""
    import repro.core.model as M

    monkeypatch.setattr(M, "_DEBUG_CHECK", True)
    res = calculate(
        LLM, BIG,
        ExecutionStrategy(tensor_par=2, pipeline_par=2, data_par=2, batch=8,
                          recompute="full"),
    )
    assert res.feasible  # checker passed silently
