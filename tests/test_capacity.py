"""Capacity-planning tests: minimum HBM, memory frontier, minimum size."""

import pytest

from repro.analysis import memory_frontier, minimum_hbm, minimum_system_size
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system, ddr5_offload
from repro.llm import MEGATRON_1T, LLMConfig
from repro.search import SearchOptions
from repro.units import GiB

LLM = LLMConfig(name="cap-llm", hidden=2048, attn_heads=16, seq_size=1024,
                num_blocks=8)
OPTS = SearchOptions(
    recompute=("attn_only", "full"),
    seq_par_modes=((True, True, True),),
    tp_overlap=("none",),
    dp_overlap=(False,),
    optimizer_sharding=(True,),
    fused_activations=(False,),
    max_microbatch=4,
)


def strat(**kw):
    base = dict(tensor_par=8, pipeline_par=1, data_par=1, batch=8, microbatch=1)
    base.update(kw)
    return ExecutionStrategy(**base)


def test_minimum_hbm_independent_of_system_capacity():
    big = a100_system(8, hbm_gib=1000)
    small = a100_system(8, hbm_gib=1)  # the strategy would not fit here
    assert minimum_hbm(LLM, big, strat()) == pytest.approx(
        minimum_hbm(LLM, small, strat())
    )


def test_minimum_hbm_matches_direct_calculation():
    from repro.core import calculate

    system = a100_system(8, hbm_gib=1_000_000)
    res = calculate(LLM, system, strat())
    assert minimum_hbm(LLM, system, strat()) == pytest.approx(res.mem1.total)


def test_minimum_hbm_raises_on_structural_invalidity():
    with pytest.raises(ValueError, match="capacity"):
        minimum_hbm(LLM, a100_system(8), strat(data_par=2))


def test_recompute_lowers_minimum_hbm():
    system = a100_system(8)
    assert minimum_hbm(LLM, system, strat(recompute="full")) < minimum_hbm(
        LLM, system, strat(recompute="none")
    )


def test_memory_frontier_monotone_nondecreasing():
    system = a100_system(8)
    caps = [g * GiB for g in (2, 4, 8, 20, 80)]
    frontier = memory_frontier(LLM, system, 16, caps, OPTS)
    rates = [p.sample_rate for p in frontier]
    assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
    assert frontier[-1].feasible


def test_memory_frontier_infeasible_below_floor():
    system = a100_system(8)
    frontier = memory_frontier(LLM, system, 16, [0.001 * GiB], OPTS)
    assert not frontier[0].feasible
    assert frontier[0].sample_rate == 0.0


def test_memory_frontier_validates_capacity():
    with pytest.raises(ValueError, match="positive"):
        memory_frontier(LLM, a100_system(8), 16, [0.0], OPTS)


def test_minimum_system_size_finds_floor():
    floor = minimum_system_size(
        LLM, lambda n: a100_system(n, hbm_gib=4), 32, [2, 4, 8, 16], OPTS
    )
    assert floor in (2, 4, 8, 16)
    # All smaller candidate sizes must genuinely fail.
    if floor > 2:
        smaller = minimum_system_size(
            LLM, lambda n: a100_system(n, hbm_gib=4), 32, [floor // 2], OPTS
        )
        assert smaller is None


def test_minimum_system_size_none_when_hopeless():
    out = minimum_system_size(
        LLM, lambda n: a100_system(n, hbm_gib=0.001), 32, [2, 4, 8], OPTS
    )
    assert out is None


def test_minimum_system_size_validates():
    with pytest.raises(ValueError, match="positive"):
        minimum_system_size(LLM, a100_system, 32, [0], OPTS)


def test_offload_lowers_megatron_1t_minimum_size():
    """The §6 headline: the offload tier shrinks the smallest viable cluster."""
    sizes = [64, 128, 256, 512]
    no_off = minimum_system_size(
        MEGATRON_1T, lambda n: a100_system(n), 512, sizes, OPTS
    )
    with_off = minimum_system_size(
        MEGATRON_1T,
        lambda n: a100_system(n, offload=ddr5_offload(512)),
        512,
        sizes,
        OPTS.with_offload_only(),
    )
    assert with_off is not None
    assert no_off is None or with_off <= no_off
