"""``repro trace`` analysis: critical path, lanes, stragglers, journal joins.

Runs :func:`repro.obs.analyze.analyze_trace` on a hand-built Chrome trace
whose answers are computable by eye, so every reported number is pinned:

* pid 2 runs chunk[0] (4s) then chunk[2] (2s); pid 3 runs chunk[1] (9s),
  with two ``engine.stage`` aggregates riding inside it; pid 1 finalizes
  for 0.5s after the last chunk.  Wall clock is 9.5s, the critical path is
  chunk[1] -> finalize, and chunk[1] is the lone straggler (2.2x the
  median chunk time *and* finished last).
"""

import json

import pytest

from repro.obs import EventJournal, Tracer
from repro.obs.analyze import (
    TraceReport,
    analyze_files,
    analyze_trace,
    load_trace,
)

_US = 1e6
TRACE_ID = "f" * 32


def _span(name, cat, pid, ts_s, dur_s, tid=0, **args):
    event = {"name": name, "cat": cat, "ph": "X", "ts": ts_s * _US,
             "dur": dur_s * _US, "pid": pid, "tid": tid}
    if args:
        event["args"] = args
    return event


def _meta(pid, label):
    return {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label}}


@pytest.fixture
def trace():
    return {
        "traceEvents": [
            _meta(1, "main"), _meta(2, "worker 2"), _meta(3, "worker 3"),
            _span("chunk[0]", "search.chunk", 2, 0.0, 4.0),
            _span("chunk[2]", "search.chunk", 2, 4.0, 2.0),
            _span("chunk[1]", "search.chunk", 3, 0.0, 9.0),
            # In-chunk aggregates: presentation, never measurement.
            _span("memory", "engine.stage", 3, 0.0, 1.0),
            _span("compute", "engine.stage", 3, 1.0, 2.0),
            _span("finalize", "search", 1, 9.0, 0.5),
        ],
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": TRACE_ID},
    }


def test_wall_clock_and_identity(trace):
    report = analyze_trace(trace)
    assert report.trace_id == TRACE_ID
    assert report.wall_s == pytest.approx(9.5)
    assert report.span_count == 6


def test_lane_stats_exclude_aggregate_spans(trace):
    report = analyze_trace(trace)
    by_pid = {lane.pid: lane for lane in report.lanes}
    assert set(by_pid) == {1, 2, 3}
    assert by_pid[1].label == "main"
    assert by_pid[2].label == "worker 2"
    assert by_pid[2].busy_s == pytest.approx(6.0)
    assert by_pid[2].utilization == pytest.approx(6.0 / 9.5)
    assert by_pid[2].spans == 2
    # The engine.stage aggregates neither count as spans nor add busy time.
    assert by_pid[3].busy_s == pytest.approx(9.0)
    assert by_pid[3].spans == 1


def test_critical_path_chains_backward_from_last_span(trace):
    report = analyze_trace(trace)
    names = [step["name"] for step in report.critical_path]
    assert names == ["chunk[1]", "finalize"]
    assert report.critical_path_s == pytest.approx(9.5)
    assert report.critical_path[0]["start_s"] == pytest.approx(0.0)
    assert report.critical_path[1]["start_s"] == pytest.approx(9.0)
    # chunk[0] ends at 4s, a 5s gap before finalize: overlapped work,
    # not on the path; aggregates are excluded outright.
    assert "chunk[0]" not in names and "memory" not in names


def test_stage_breakdown_sums_aggregate_spans(trace):
    report = analyze_trace(trace)
    assert report.stage_seconds == {
        "memory": pytest.approx(1.0),
        "compute": pytest.approx(2.0),
    }


def test_straggler_needs_median_excess_or_finishing_last(trace):
    report = analyze_trace(trace)
    (straggler,) = report.stragglers
    assert straggler["name"] == "chunk[1]"
    assert straggler["dur_s"] == pytest.approx(9.0)
    assert "median chunk time" in straggler["reason"]
    assert "finished last" in straggler["reason"]


def test_empty_trace_reports_zero_without_crashing():
    report = analyze_trace({"traceEvents": []})
    assert report.wall_s == 0.0
    assert report.span_count == 0
    assert report.critical_path == []
    assert "0 spans" in report.to_text()


# ---------------------------------------------------------------------------
# Journal join
# ---------------------------------------------------------------------------

def _event(kind, **fields):
    return {"v": 1, "kind": kind, "ts": 0.0, "mono": 0.0, "pid": 1, **fields}


@pytest.fixture
def events():
    return [
        _event("chunk.retry", chunk=3, attempt=0),
        _event("chunk.retry", chunk=3, attempt=1),
        _event("chunk.timeout", chunk=3, attempt=2),
        _event("chunk.retry", chunk=1, attempt=0),
        _event("chunk.skipped", chunk=3, error="FaultInjected()"),
        _event("sweep.truncated", pending=2),
        *[_event("request.done", seconds=0.1, strategies=1) for _ in range(4)],
        _event("coalesce", key="abcd"),
        *[_event("cache.hit", tier="memory") for _ in range(3)],
        _event("cache.miss"),
        _event("backpressure.reject", depth=256),
        _event("draining.reject"),
    ]


def test_journal_effectiveness_rollups(trace, events):
    report = analyze_trace(trace, events)
    assert report.event_count == len(events)
    assert report.retry_hotspots[0] == {"chunk": 3, "failures": 3}
    assert report.retry_hotspots[1] == {"chunk": 1, "failures": 1}
    assert report.cache == {"hits": 3, "misses": 1, "hit_ratio": 0.75}
    assert report.coalescing == {"requests": 4, "coalesced": 1, "rate": 0.25}
    assert report.backpressure_rejects == 2
    assert report.skipped_chunks == 1
    assert report.truncated is True


def test_text_rendering_mentions_every_section(trace, events):
    text = analyze_trace(trace, events).to_text()
    assert TRACE_ID in text
    assert "critical path" in text
    assert "stragglers" in text
    assert "stage breakdown" in text
    assert "retry hotspots" in text
    assert "75.0% hit ratio" in text
    assert "coalescing" in text
    assert "truncated" in text


def test_json_rendering_round_trips(trace, events):
    report = analyze_trace(trace, events)
    decoded = json.loads(report.to_json())
    assert decoded == report.to_dict()
    assert decoded["trace_id"] == TRACE_ID
    assert [s["name"] for s in decoded["critical_path"]] == ["chunk[1]", "finalize"]


# ---------------------------------------------------------------------------
# File loading
# ---------------------------------------------------------------------------

def test_load_trace_rejects_non_trace_json(tmp_path):
    path = tmp_path / "notatrace.json"
    path.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(ValueError, match="Chrome trace"):
        load_trace(path)
    path.write_text(json.dumps({"results": []}))
    with pytest.raises(ValueError, match="Chrome trace"):
        load_trace(path)


def test_analyze_files_joins_real_tracer_and_journal(tmp_path):
    tracer = Tracer()
    tracer.add_span("chunk[0]", "search.chunk", 10.0, 2.0, chunk=0)
    tracer.add_span("chunk[1]", "search.chunk", 12.0, 1.0, chunk=1)
    trace_path = tracer.write(tmp_path / "trace.json")
    journal_path = tmp_path / "events.jsonl"
    with EventJournal(journal_path, source="search") as journal:
        journal.emit("cache.hit", tier="disk")
        journal.emit("cache.miss")
    report = analyze_files(trace_path, journal_path)
    assert isinstance(report, TraceReport)
    assert report.trace_id == tracer.trace_id
    assert report.wall_s == pytest.approx(3.0)
    assert report.event_count == 2
    assert report.cache["hit_ratio"] == 0.5
