"""Property tests for the fabric's bounded top-k merge (satellite of the
distributed-fabric PR).

The whole bit-identity argument of ``docs/FABRIC.md`` rests on one claim:
folding per-chunk top-k lists through :class:`repro.fabric.TopKMerge` is a
pure function of the *set* of offered entries — independent of how the
space was partitioned into chunks, which order chunk results arrived, and
how the folds were associated.  Hypothesis drives that claim across
arbitrary entry sets, partitions and permutations, and checks the result
against two references:

* the total-order reference ``sorted(entries, key=(-rate, gidx))[:k]`` —
  the retention rule ``_search_columnar`` implements with ``np.lexsort``;
* an emulation of the serial scalar heap in
  ``execution_search._evaluate_chunk`` (strict ``rate > heap[0][0]``
  admission), which coincides with the total order whenever rates are
  unique — the tie-free case every real sweep of this model lands in.
"""

import heapq
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import TopKMerge

# Rates drawn from a small float pool *force* exact collisions, so the
# unique-gidx tiebreak is exercised constantly rather than never.
_RATES = st.sampled_from([0.0, 1.0, 1.5, 2.0, 2.5, 3.0, 3.125])


@st.composite
def entry_sets(draw, max_size=64):
    """A list of (rate, gidx, payload) with unique global indices."""
    n = draw(st.integers(min_value=0, max_value=max_size))
    gidxs = draw(st.permutations(range(max_size)))[:n]
    return [(draw(_RATES), g, {"g": g}) for g in gidxs]


def _partition(entries, cuts):
    """Split a list at the given cut points into contiguous chunks."""
    bounds = [0, *sorted(set(cuts)), len(entries)]
    return [entries[a:b] for a, b in zip(bounds, bounds[1:])]


def _reference(entries, k):
    """The total-order reference: best k under ``(-rate, gidx)``."""
    ranked = sorted(entries, key=lambda e: (-e[0], e[1]))[:k]
    return [(r, g, p) for r, g, p in ranked]


def _serial_heap(entries, k):
    """The scalar chunk heap from ``execution_search._evaluate_chunk``:
    strict rate-only admission over a min-heap of ``(rate, gidx)``."""
    heap = []
    for rate, gidx, payload in entries:
        entry = (rate, gidx, payload)
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif rate > heap[0][0]:
            heapq.heapreplace(heap, entry)
    return sorted(heap, key=lambda e: (-e[0], e[1]))


@settings(max_examples=200, deadline=None)
@given(
    entries=entry_sets(),
    k=st.integers(min_value=0, max_value=12),
    cuts=st.lists(st.integers(min_value=0, max_value=64), max_size=6),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_merge_is_partition_and_order_invariant(entries, k, cuts, seed):
    """Any chunking, any arrival order -> the single-fold answer."""
    whole = TopKMerge(k)
    whole.extend(entries)

    chunks = _partition(entries, cuts)
    rng = random.Random(seed)
    rng.shuffle(chunks)  # arrival order is arbitrary (commutativity)
    merged = TopKMerge(k)
    for chunk in chunks:
        # Workers pre-truncate to their local top-k before shipping; the
        # coordinator must still land on the global answer.
        local = TopKMerge(k)
        local.extend(chunk)
        merged.merge(local)

    assert merged.entries() == whole.entries() == _reference(entries, k)


@settings(max_examples=100, deadline=None)
@given(
    entries=entry_sets(),
    k=st.integers(min_value=1, max_value=8),
    cuts=st.lists(st.integers(min_value=0, max_value=64), max_size=4),
)
def test_merge_is_associative(entries, k, cuts):
    """Left fold == right fold == balanced fold over the same chunks."""
    chunks = _partition(entries, cuts)
    merges = []
    for chunk in chunks:
        m = TopKMerge(k)
        m.extend(chunk)
        merges.append(m)

    def fresh():
        out = []
        for chunk in chunks:
            m = TopKMerge(k)
            m.extend(chunk)
            out.append(m)
        return out

    left = fresh()
    acc = left[0]
    for m in left[1:]:
        acc.merge(m)

    right = fresh()
    racc = right[-1]
    for m in reversed(right[:-1]):
        racc.merge(m)

    tree = fresh()
    while len(tree) > 1:
        tree = [
            tree[i].merge(tree[i + 1]) if i + 1 < len(tree) else tree[i]
            for i in range(0, len(tree), 2)
        ]

    assert acc.entries() == racc.entries() == tree[0].entries()


@settings(max_examples=150, deadline=None)
@given(
    rates=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False),
        unique=True, max_size=48,
    ),
    k=st.integers(min_value=1, max_value=10),
    cuts=st.lists(st.integers(min_value=0, max_value=48), max_size=5),
)
def test_merge_matches_serial_scalar_heap_on_unique_rates(rates, k, cuts):
    """With unique rates (every real sweep), the chunked fold reproduces
    the serial scalar heap bit-for-bit — same entries, same order."""
    entries = [(r, g, {"g": g}) for g, r in enumerate(rates)]
    merged = TopKMerge(k)
    for chunk in _partition(entries, cuts):
        local = TopKMerge(k)
        local.extend(chunk)
        merged.merge(local)
    assert merged.entries() == _serial_heap(entries, k)


def test_strict_admission_keeps_earliest_on_ties():
    """A full heap admits only a strictly better (-rate, gidx) key: a tie
    at the boundary keeps the earlier (smaller gidx) candidate."""
    m = TopKMerge(2)
    assert m.add(1.0, 5)
    assert m.add(1.0, 9)
    assert not m.add(1.0, 12)       # ties the floor, later index: rejected
    assert m.add(1.0, 3)            # ties the rate, earlier index: admitted
    assert [(r, g) for r, g, _ in m.entries()] == [(1.0, 3), (1.0, 5)]


def test_threshold_and_len():
    m = TopKMerge(3)
    assert m.threshold() is None
    m.extend([(2.0, 0, None), (1.0, 1, None), (3.0, 2, None)])
    assert len(m) == 3
    assert m.threshold() == (1.0, 1)
    assert [g for _, g, _ in m] == [2, 0, 1]


def test_k_zero_retains_nothing():
    m = TopKMerge(0)
    assert not m.add(5.0, 1)
    assert m.entries() == [] and m.threshold() is None
