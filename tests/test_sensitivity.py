"""Hardware sensitivity-analysis tests."""

import pytest

from repro.analysis import sensitivity
from repro.analysis.sensitivity import Elasticity
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system, ddr5_offload
from repro.llm import LLMConfig

LLM = LLMConfig(name="sens-llm", hidden=4096, attn_heads=32, seq_size=2048,
                num_blocks=16)
SYS = a100_system(16, hbm_gib=1_000_000)


def strat(**kw):
    base = dict(tensor_par=8, pipeline_par=2, data_par=1, batch=8,
                microbatch=1, recompute="full")
    base.update(kw)
    return ExecutionStrategy(**base)


def knobs(elasticities):
    return {e.knob: e for e in elasticities}


def test_all_expected_knobs_present():
    ks = knobs(sensitivity(LLM, SYS, strat()))
    assert "matrix_flops" in ks
    assert "vector_flops" in ks
    assert "mem1_bandwidth" in ks
    assert "net[nvlink3]_bandwidth" in ks
    assert "net[ib-hdr]_bandwidth" in ks
    assert "mem2_bandwidth" not in ks  # no tier-2 attached


def test_mem2_knob_appears_with_offload():
    sys2 = a100_system(16, hbm_gib=1_000_000, offload=ddr5_offload(100_000))
    ks = knobs(
        sensitivity(
            LLM,
            sys2,
            strat(weight_offload=True, activation_offload=True,
                  optimizer_offload=True),
        )
    )
    assert "mem2_bandwidth" in ks


def test_elasticities_are_nonpositive():
    # Faster components can never slow the model down.
    for e in sensitivity(LLM, SYS, strat()):
        assert e.value <= 1e-9


def test_compute_bound_config_most_sensitive_to_matrix_flops():
    ks = knobs(sensitivity(LLM, SYS, strat()))
    assert ks["matrix_flops"].value == min(e.value for e in ks.values())
    assert ks["matrix_flops"].value < -0.3


def test_elasticity_bounded_by_minus_one():
    for e in sensitivity(LLM, SYS, strat()):
        assert e.value >= -1.0 - 1e-6


def test_results_sorted_most_critical_first():
    es = sensitivity(LLM, SYS, strat())
    vals = [e.value for e in es]
    assert vals == sorted(vals)


def test_speedup_at_2x():
    e = Elasticity(knob="k", baseline_time=1.0, scaled_time=0.8, scale=1.25)
    # elasticity = ln(0.8)/ln(1.25) = -1 -> doubling the knob doubles speed.
    assert e.value == pytest.approx(-1.0)
    assert e.speedup_at_2x == pytest.approx(2.0)


def test_zero_elasticity_for_off_path_component():
    e = Elasticity(knob="k", baseline_time=1.0, scaled_time=1.0, scale=1.25)
    assert e.value == 0.0
    assert e.speedup_at_2x == pytest.approx(1.0)


def test_scale_validation():
    with pytest.raises(ValueError, match="scale"):
        sensitivity(LLM, SYS, strat(), scale=1.0)


def test_infeasible_baseline_raises():
    tiny = a100_system(16, hbm_gib=0.001)
    with pytest.raises(ValueError, match="infeasible"):
        sensitivity(LLM, tiny, strat())


def test_comm_heavy_config_sensitive_to_network():
    # Extreme TP over a deliberately slow fabric shifts sensitivity to it.
    from dataclasses import replace

    slow_net = replace(
        SYS,
        networks=(
            replace(SYS.networks[0], bandwidth=SYS.networks[0].bandwidth / 100),
            SYS.networks[1],
        ),
    )
    # t=8 stays inside the (slowed) NVLink domain.
    ks = knobs(sensitivity(LLM, slow_net, strat(tensor_par=8, pipeline_par=2)))
    assert ks["net[nvlink3]_bandwidth"].value < -0.3
