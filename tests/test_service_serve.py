"""POST /serve on the evaluation service: caching, validation, draining."""

import json
import urllib.request

import pytest

from repro.obs import TraceContext
from repro.service.server import (
    BadRequest,
    Draining,
    EvaluationService,
    make_server,
)

BODY = {
    "llm": "tiny-test",
    "system": "h100:4:8",
    "plan": {"decode": {"tensor_par": 2, "pipeline_par": 1, "data_par": 2,
                        "batch": 1}},
    "workload": {
        "arrival_rate": 20.0,
        "prompt": {"kind": "uniform", "low": 64, "high": 128},
        "output": {"kind": "uniform", "low": 16, "high": 32},
        "num_requests": 40,
        "seed": 1,
    },
    "slo": {"ttft_p95": 1.0, "tpot_p95": 0.5},
}


@pytest.fixture
def service():
    svc = EvaluationService().start()
    yield svc
    svc.stop()


def test_serve_miss_then_memory_hit(service):
    first = service.serve_payload(BODY)
    assert first["cache"] == "miss"
    result = first["result"]
    assert result["completed"] == 40
    assert result["slo_satisfied"] is True and result["slo_violations"] == []
    assert result["goodput_rps"] > 0
    assert "ttfts" not in result  # per-request vectors stay server-side
    second = service.serve_payload(BODY)
    assert second["cache"] == "memory"
    assert second["result"] == result
    assert second["key"] == first["key"]


def test_serve_key_separates_from_evaluate_and_varies(service):
    k1 = service.serve_payload(BODY)["key"]
    tweaked = dict(BODY, slo={"ttft_p95": 2.0, "tpot_p95": 0.5})
    k2 = service.serve_payload(tweaked)["key"]
    assert k1 != k2


def test_serve_reports_violations(service):
    tight = dict(BODY, slo={"ttft_p95": 1e-9, "tpot_p95": None})
    out = service.serve_payload(tight)["result"]
    assert out["slo_satisfied"] is False
    assert any("ttft_p95" in v for v in out["slo_violations"])


def test_serve_bad_requests(service):
    with pytest.raises(BadRequest):
        service.serve_payload(["not", "a", "dict"])
    with pytest.raises(BadRequest):
        service.serve_payload({k: v for k, v in BODY.items() if k != "plan"})
    with pytest.raises(BadRequest):
        service.serve_payload(dict(BODY, plan={"decode": {"tensor_par": 0}}))
    with pytest.raises(BadRequest):
        service.serve_payload(dict(BODY, max_batch=0))
    with pytest.raises(BadRequest):
        # 3 doesn't divide the model shape: unserveable, mapped to 400.
        service.serve_payload(dict(
            BODY,
            plan={"decode": {"tensor_par": 1, "pipeline_par": 1,
                             "data_par": 1, "batch": 1}},
        ))


def test_serve_draining_rejects_misses_but_serves_hits(service):
    cached = service.serve_payload(BODY)
    service.begin_drain()
    hit = service.serve_payload(BODY)
    assert hit["cache"] == "memory" and hit["result"] == cached["result"]
    fresh = dict(BODY, workload=dict(BODY["workload"], seed=2))
    with pytest.raises(Draining):
        service.serve_payload(fresh)


def test_serve_trace_context_rides_back(service):
    ctx = TraceContext(trace_id="serve-trace-1", parent="root")
    out = service.serve_payload(BODY, trace_context=ctx)
    assert out["trace"]["trace_id"] == "serve-trace-1"
    assert any(e.get("name") == "serve" for e in out["trace"]["events"])


def test_serve_metrics_exposed(service):
    service.serve_payload(BODY)
    text = service.metrics_text()
    assert "repro_serving_requests 1" in text
    assert "repro_serving_seconds_count" in text


def test_serve_over_http():
    server = make_server(port=0)
    import threading

    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{server.port}/serve"
        req = urllib.request.Request(
            url, data=json.dumps(BODY).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            payload = json.loads(resp.read())
        assert payload["cache"] == "miss"
        assert payload["result"]["completed"] == 40
        bad = urllib.request.Request(url, data=b"{}",
                                     headers={"Content-Type": "application/json"})
        try:
            urllib.request.urlopen(bad, timeout=30)
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as err:
            assert err.code == 400
    finally:
        server.shutdown()
        server.server_close()
        server.service.stop()
        thread.join(timeout=5)
