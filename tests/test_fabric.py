"""Distributed search fabric: protocol, work stealing, resume, bit-identity.

The acceptance bar for the fabric is that a sharded, stolen, resumed,
partially-dead cluster still produces **exactly** the single-process
``search()`` answer.  These tests drive the coordinator both directly (no
HTTP — the protocol methods are plain calls) and over real loopback HTTP
through :class:`repro.fabric.FabricWorker`, and cover the failure
machinery: lease expiry and theft, worker death and resurrection, stale
duplicate results, serial fallback, chunk skipping, checkpoint resume and
torn-journal flight recording.
"""

import json
import threading
import time

import pytest

from repro.fabric import (
    FabricCoordinator,
    FabricError,
    FabricWorker,
    enumerate_space,
    fabric_run_key,
    make_fabric_server,
    options_from_dict,
    options_to_dict,
    plan_chunks,
    run_fabric,
)
from repro.fabric.chunkeval import evaluate_chunk
from repro.hardware import a100_system
from repro.llm import LLMConfig
from repro.obs import EventJournal, read_events, validate_events
from repro.search import RetryPolicy, SearchOptions, search
from repro.search.checkpoint import CheckpointJournal

LLM = LLMConfig(name="fabric-llm", hidden=2048, attn_heads=16, seq_size=1024,
                num_blocks=16)
SYS = a100_system(8)
BATCH = 16


def small_options():
    """A few dozen candidates: fast, but enough for multi-chunk plans."""
    return SearchOptions(
        recompute=("none", "full"),
        tp_overlap=("none",),
        dp_overlap=(False,),
        optimizer_sharding=(False, True),
        fused_activations=(False,),
        max_microbatch=2,
        interleaving_values=(1, 2),
    )


def reference(top_k=5):
    return search(LLM, SYS, BATCH, small_options(), top_k=top_k, workers=0,
                  keep_rates=False)


def tops(result):
    return [(s.to_dict(), r.sample_rate) for s, r in result.top]


def drain(coord, worker_id, cols, strategies, *, limit=1000):
    """Pull-evaluate-submit until the coordinator says done."""
    finished = 0
    for _ in range(limit):
        reply = coord.lease(worker_id)
        if reply["status"] == "done":
            return finished
        if reply["status"] == "wait":
            time.sleep(0.005)
            continue
        chunk = reply["chunk"]
        payload = evaluate_chunk(
            LLM, SYS, chunk["start"], chunk["stop"], coord.top_k,
            cols=cols, strategies=strategies, chunk_index=chunk["index"],
        )
        coord.submit(worker_id, chunk["index"], payload, key=coord.key)
        finished += 1
    raise AssertionError("coordinator never reported done")


# ---------------------------------------------------------------------------
# Planning and wire-format round trips
# ---------------------------------------------------------------------------

def test_plan_chunks_covers_the_space_exactly():
    for total, workers in [(0, 4), (1, 4), (55, 2), (100, 3), (4096, 16)]:
        chunks = plan_chunks(total, workers)
        assert [c.index for c in chunks] == list(range(len(chunks)))
        covered = [i for c in chunks for i in range(c.start, c.stop)]
        assert covered == list(range(total))
        if total:
            # Granular enough to steal, coarse enough to amortize HTTP.
            assert len(chunks) <= workers * 4 + 1


def test_plan_chunks_explicit_step_wins():
    chunks = plan_chunks(10, 4, step=3)
    assert [(c.start, c.stop) for c in chunks] == [(0, 3), (3, 6), (6, 9), (9, 10)]


def test_options_survive_json_round_trip_with_identical_key():
    opts = small_options()
    wire = json.loads(json.dumps(options_to_dict(opts)))
    rebuilt = options_from_dict(wire)
    assert rebuilt == opts
    assert (
        fabric_run_key(LLM, SYS, BATCH, rebuilt, top_k=5)
        == fabric_run_key(LLM, SYS, BATCH, opts, top_k=5)
    )


def test_chunk_evaluation_is_partition_independent():
    """Slice-and-merge over any chunking == the whole-space columnar top-k."""
    ref = reference(top_k=5)
    cols, strategies, total = enumerate_space(LLM, SYS, BATCH, small_options())
    from repro.fabric import TopKMerge

    for step in (7, 23, total):
        merge = TopKMerge(5)
        n = feasible = 0
        for chunk in plan_chunks(total, 1, step=step):
            payload = evaluate_chunk(
                LLM, SYS, chunk.start, chunk.stop, 5,
                cols=cols, strategies=strategies, chunk_index=chunk.index,
            )
            n += payload["n"]
            feasible += payload["feasible"]
            merge.extend(
                (rate, gidx, strat) for rate, gidx, strat in payload["top"]
            )
        assert n == total == ref.num_evaluated
        assert feasible == ref.num_feasible
        got = [(dict(strat), rate) for rate, _gidx, strat in merge.entries()]
        assert got == tops(ref)


# ---------------------------------------------------------------------------
# Coordinator protocol (no HTTP)
# ---------------------------------------------------------------------------

def test_two_workers_produce_bit_identical_answer():
    ref = reference()
    coord = FabricCoordinator(LLM, SYS, BATCH, small_options(), top_k=5,
                              expected_workers=2)
    a = coord.register("a")["worker_id"]
    b = coord.register("b")["worker_id"]
    cols, strategies, _ = enumerate_space(LLM, SYS, BATCH, small_options())
    done = []
    threads = [
        threading.Thread(target=lambda w: done.append(
            drain(coord, w, cols, strategies)), args=(w,))
        for w in (a, b)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    result = coord.result(timeout=10)
    assert sum(done) == coord.status()["chunks"]
    assert result.num_evaluated == ref.num_evaluated
    assert result.num_feasible == ref.num_feasible
    assert tops(result) == tops(ref)
    assert result.stats is not None and result.stats.workers == 2


def test_lease_barrier_waits_for_expected_workers():
    coord = FabricCoordinator(LLM, SYS, BATCH, small_options(),
                              expected_workers=2)
    a = coord.register("a")["worker_id"]
    assert coord.lease(a)["status"] == "wait"
    coord.register("b")
    assert coord.lease(a)["status"] == "lease"


def test_unknown_worker_and_wrong_key_are_protocol_errors():
    coord = FabricCoordinator(LLM, SYS, BATCH, small_options())
    with pytest.raises(FabricError, match="register first"):
        coord.lease("nobody")
    w = coord.register("w")["worker_id"]
    with pytest.raises(FabricError, match="does not belong"):
        coord.submit(w, 0, {"n": 1, "feasible": 1, "top": []}, key="f" * 64)
    with pytest.raises(FabricError, match="malformed"):
        coord.submit(w, 0, {"nope": True}, key=coord.key)
    with pytest.raises(FabricError, match="no such chunk"):
        coord.submit(w, 10**6, {"n": 0, "feasible": 0, "top": []},
                     key=coord.key)


def test_expired_lease_is_stolen_and_duplicate_result_goes_stale(tmp_path):
    events_path = tmp_path / "events.jsonl"
    ref = reference()
    cols, strategies, _ = enumerate_space(LLM, SYS, BATCH, small_options())
    with EventJournal(events_path, source="fabric") as events:
        coord = FabricCoordinator(
            LLM, SYS, BATCH, small_options(), top_k=5, expected_workers=2,
            lease_timeout=0.05, events=events,
        )
        slow = coord.register("slow")["worker_id"]
        live = coord.register("live")["worker_id"]
        held = coord.lease(slow)
        assert held["status"] == "lease"
        held_index = held["chunk"]["index"]
        time.sleep(0.1)  # the lease expires; `slow` is presumed dead
        drain(coord, live, cols, strategies)
        result = coord.result(timeout=10)
        assert tops(result) == tops(ref)
        # The wedged worker finally answers: acknowledged, discarded.
        late = evaluate_chunk(
            LLM, SYS, held["chunk"]["start"], held["chunk"]["stop"], 5,
            cols=cols, strategies=strategies, chunk_index=held_index,
        )
        reply = coord.submit(slow, held_index, late, key=coord.key)
        assert reply["status"] == "stale"
        # ...and the late result resurrected it in the worker table.
        assert coord.status()["workers"][slow]["dead"] is False

    kinds = [e["kind"] for e in read_events(events_path)]
    assert "lease.expire" in kinds and "worker.dead" in kinds
    steals = [e for e in read_events(events_path) if e["kind"] == "lease.steal"]
    assert any(s["chunk"] == held_index and s["previous"] == slow
               for s in steals)
    assert validate_events(list(read_events(events_path))) == []


def test_dead_cluster_degrades_to_serial_fallback(tmp_path):
    ref = reference()
    with EventJournal(tmp_path / "ev.jsonl", source="fabric") as events:
        coord = FabricCoordinator(
            LLM, SYS, BATCH, small_options(), top_k=5,
            lease_timeout=0.05, events=events,
            retry_policy=RetryPolicy(max_retries=0),
        )
        w = coord.register("doomed")["worker_id"]
        assert coord.lease(w)["status"] == "lease"  # holds it forever
        result = coord.result(timeout=30)
    assert tops(result) == tops(ref)
    assert result.truncated is False
    kinds = [e["kind"] for e in read_events(tmp_path / "ev.jsonl")]
    assert "chunk.serial_fallback" in kinds and "fabric.done" in kinds


def test_skipped_chunks_truncate_the_result():
    coord = FabricCoordinator(
        LLM, SYS, BATCH, small_options(), top_k=5, lease_timeout=0.05,
        retry_policy=RetryPolicy(max_retries=0, serial_fallback=False),
    )
    w = coord.register("doomed")["worker_id"]
    assert coord.lease(w)["status"] == "lease"
    result = coord.result(timeout=30)
    assert result.truncated is True
    assert result.stats.skipped  # the dropped [start, stop) ranges
    assert result.num_evaluated == 0


# ---------------------------------------------------------------------------
# Checkpoint resume
# ---------------------------------------------------------------------------

def test_resume_folds_journaled_chunks_and_matches_uninterrupted(tmp_path):
    checkpoint = tmp_path / "fabric.jsonl"
    ref = reference()
    cols, strategies, _ = enumerate_space(LLM, SYS, BATCH, small_options())

    first = FabricCoordinator(LLM, SYS, BATCH, small_options(), top_k=5,
                              checkpoint=str(checkpoint))
    w = first.register("w")["worker_id"]
    # Complete exactly two chunks, then "crash" the coordinator.
    for _ in range(2):
        reply = first.lease(w)
        chunk = reply["chunk"]
        payload = evaluate_chunk(
            LLM, SYS, chunk["start"], chunk["stop"], 5,
            cols=cols, strategies=strategies, chunk_index=chunk["index"],
        )
        first.submit(w, chunk["index"], payload, key=first.key)
    journal = CheckpointJournal.load(checkpoint)
    assert len(journal) == 2
    assert journal.meta["step"] == first.status()["candidates"] // 4 + (
        first.status()["candidates"] % 4 > 0)

    second = FabricCoordinator(LLM, SYS, BATCH, small_options(), top_k=5,
                               checkpoint=str(checkpoint), resume=True)
    w2 = second.register("w2")["worker_id"]
    drain(second, w2, cols, strategies)
    result = second.result(timeout=10)
    assert result.stats.resumed_chunks == 2
    assert result.num_evaluated == ref.num_evaluated
    assert result.num_feasible == ref.num_feasible
    assert tops(result) == tops(ref)


def test_fully_journaled_run_finishes_without_workers(tmp_path):
    checkpoint = tmp_path / "fabric.jsonl"
    ref = reference()
    cols, strategies, _ = enumerate_space(LLM, SYS, BATCH, small_options())
    first = FabricCoordinator(LLM, SYS, BATCH, small_options(), top_k=5,
                              checkpoint=str(checkpoint))
    w = first.register("w")["worker_id"]
    drain(first, w, cols, strategies)
    assert first.result(timeout=10).num_evaluated == ref.num_evaluated

    resumed = FabricCoordinator(LLM, SYS, BATCH, small_options(), top_k=5,
                                checkpoint=str(checkpoint), resume=True)
    assert resumed.done  # complete at construction; no worker ever joins
    assert tops(resumed.result(timeout=1)) == tops(ref)


def test_torn_checkpoint_line_is_flight_recorded(tmp_path):
    """Satellite: a crash-torn trailing line is reported with its byte
    offset through the events journal instead of being silently skipped."""
    checkpoint = tmp_path / "fabric.jsonl"
    coord = FabricCoordinator(LLM, SYS, BATCH, small_options(), top_k=5,
                              checkpoint=str(checkpoint))
    cols, strategies, _ = enumerate_space(LLM, SYS, BATCH, small_options())
    w = coord.register("w")["worker_id"]
    drain(coord, w, cols, strategies)

    intact = checkpoint.read_bytes()
    torn_offset = len(intact)
    checkpoint.write_bytes(intact + b'{"kind": "record", "id": "9", "da')

    with EventJournal(tmp_path / "ev.jsonl", source="fabric") as events:
        journal = CheckpointJournal.load(checkpoint, events=events)
    assert journal is not None and len(journal) > 0  # intact records kept
    torn = [e for e in read_events(tmp_path / "ev.jsonl")
            if e["kind"] == "journal.torn"]
    assert len(torn) == 1
    assert torn[0]["offset"] == torn_offset
    assert torn[0]["store"] == "journal"
    assert torn[0]["path"].endswith("fabric.jsonl")

    # The resumed coordinator itself reports the damage the same way.
    with EventJournal(tmp_path / "ev2.jsonl", source="fabric") as events:
        FabricCoordinator(LLM, SYS, BATCH, small_options(), top_k=5,
                          checkpoint=str(checkpoint), resume=True,
                          events=events)
    assert any(e["kind"] == "journal.torn"
               for e in read_events(tmp_path / "ev2.jsonl"))


def test_torn_cache_shard_line_is_flight_recorded(tmp_path):
    """Satellite twin: the service disk-cache loader reports torn shard
    lines through the same ``journal.torn`` channel."""
    from repro.service.cache import ResultCache

    cache = ResultCache(cache_dir=tmp_path / "cache")
    cache.put("ab" + "0" * 62, {"x": 1})
    shard = next((tmp_path / "cache").glob("*.jsonl"))
    intact = shard.read_bytes()
    shard.write_bytes(intact + b'{"key": "ab11", "val')

    with EventJournal(tmp_path / "ev.jsonl", source="service") as events:
        fresh = ResultCache(cache_dir=tmp_path / "cache", events=events)
        assert fresh.get("ab" + "0" * 62) == {"x": 1}
    torn = [e for e in read_events(tmp_path / "ev.jsonl")
            if e["kind"] == "journal.torn"]
    assert len(torn) == 1
    assert torn[0]["store"] == "cache-shard"
    assert torn[0]["offset"] == len(intact)


# ---------------------------------------------------------------------------
# Over real HTTP
# ---------------------------------------------------------------------------

def _serve(server):
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    return thread


def test_http_worker_loop_and_inherited_service_routes(tmp_path):
    ref = reference()
    server = make_fabric_server(LLM, SYS, BATCH, small_options(), top_k=5,
                                expected_workers=1)
    _serve(server)
    try:
        url = f"http://127.0.0.1:{server.port}"
        worker = FabricWorker(url, name="w")
        reply = worker.register()
        assert reply["problem"]["total"] == ref.num_evaluated
        assert worker.key == server.coordinator.key
        chunks = worker.run()
        assert chunks == server.coordinator.status()["chunks"]
        result = server.coordinator.result(timeout=10)
        assert tops(result) == tops(ref)

        # The coordinator is still a full evaluation service.
        from repro.service import ServiceClient

        client = ServiceClient(url)
        assert client.healthz()["status"] == "ok"
        status = client.get("/fabric/status")
        assert status["done"] is True and status["pending"] == 0
        exposition = client.metrics_text()
        assert 'repro_fabric_worker_chunks{worker="w#0"}' in exposition
        assert "repro_fabric_leases_granted" in exposition
    finally:
        server.shutdown()
        server.server_close()
        server.service.stop(drain=False)


def test_http_worker_refuses_wrong_problem_total(monkeypatch):
    """A worker whose local enumeration disagrees must refuse to join."""
    server = make_fabric_server(LLM, SYS, BATCH, small_options(), top_k=5)
    _serve(server)
    try:
        url = f"http://127.0.0.1:{server.port}"
        import repro.fabric.worker as worker_mod

        real = worker_mod.fabric_run_key
        monkeypatch.setattr(
            worker_mod, "fabric_run_key",
            lambda *a, **kw: "0" * len(real(LLM, SYS, BATCH, small_options(),
                                           top_k=5)),
        )
        with pytest.raises(RuntimeError, match="key mismatch"):
            FabricWorker(url, name="skewed").register()
    finally:
        server.shutdown()
        server.server_close()
        server.service.stop(drain=False)


def test_run_fabric_thread_cluster_end_to_end(tmp_path):
    """The one-call local cluster: bit-identical answer, full event trail."""
    from repro.obs import Tracer

    ref = reference()
    tracer = Tracer()
    events_path = tmp_path / "events.jsonl"
    with EventJournal(events_path, source="fabric",
                      trace_id=tracer.trace_id) as events:
        result = run_fabric(
            LLM, SYS, BATCH, small_options(), workers=3, top_k=5,
            spawn="thread", events=events, tracer=tracer, timeout=120,
        )
    assert result.num_evaluated == ref.num_evaluated
    assert result.num_feasible == ref.num_feasible
    assert tops(result) == tops(ref)
    assert result.stats is not None and result.stats.workers == 3

    recorded = list(read_events(events_path))
    assert validate_events(recorded) == []
    kinds = [e["kind"] for e in recorded]
    for expected in ("fabric.start", "worker.join", "lease.grant",
                     "merge.chunk", "fabric.done"):
        assert expected in kinds, f"missing {expected} in {sorted(set(kinds))}"
    done = [e for e in recorded if e["kind"] == "fabric.done"][-1]
    assert done["evaluated"] == ref.num_evaluated
    assert done["sweep_s"] > 0
    # Worker chunk spans joined the coordinator's trace.
    worker_spans = [e for e in tracer.events()
                    if e.get("cat") == "search.chunk"]
    assert worker_spans, "no worker chunk spans stitched into the trace"


def test_run_fabric_rejects_bad_arguments():
    with pytest.raises(ValueError, match="workers"):
        run_fabric(LLM, SYS, BATCH, small_options(), workers=0)
    with pytest.raises(ValueError, match="spawn"):
        run_fabric(LLM, SYS, BATCH, small_options(), spawn="fork")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_fabric_requires_positionals_or_join(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit, match="coordinator mode"):
        main(["fabric"])
    with pytest.raises(SystemExit, match="--resume requires"):
        main(["fabric", "tiny-test", "a100:8", "--resume"])
