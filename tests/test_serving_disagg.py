"""Disaggregated prefill/decode plan tests (repro.serving.disagg)."""

import pytest

from repro.hardware.system import h100_system
from repro.inference import InferenceStrategy
from repro.llm.config import TINY_TEST
from repro.serving import (
    LengthDist,
    ServePlan,
    ServeWorkload,
    check_plan,
    kv_transfer_time,
    simulate_disagg,
    simulate_plan,
    simulate_serve,
)

SYS = h100_system(4, hbm_gib=8.0)
WL = ServeWorkload(
    arrival_rate=20.0, prompt=LengthDist.uniform(64, 128),
    output=LengthDist.uniform(16, 32), num_requests=50, seed=1,
)
PRE = InferenceStrategy(tensor_par=2, pipeline_par=1, data_par=1, batch=1)
DEC = InferenceStrategy(tensor_par=1, pipeline_par=1, data_par=2, batch=1)
PLAN = ServePlan(decode=DEC, prefill=PRE)


def test_plan_properties_and_roundtrip():
    assert PLAN.disaggregated and PLAN.total_procs == 4
    assert PLAN.prefill_procs == 2
    assert ServePlan.from_dict(PLAN.to_dict()) == PLAN
    colo = ServePlan(decode=DEC)
    assert not colo.disaggregated and colo.prefill_procs == 0
    assert ServePlan.from_dict(colo.to_dict()) == colo
    assert "pre[" in PLAN.short_name() and "dec[" in PLAN.short_name()


def test_kv_transfer_time_monotone_in_prompt():
    t1 = kv_transfer_time(TINY_TEST, SYS, 64)
    t2 = kv_transfer_time(TINY_TEST, SYS, 1024)
    assert 0 < t1 < t2


def test_check_plan_rejects_wrong_proc_count():
    small = ServePlan(
        decode=InferenceStrategy(tensor_par=1, pipeline_par=1, data_par=1,
                                 batch=1),
        prefill=PRE,
    )
    assert check_plan(TINY_TEST, SYS, small, WL) is not None
    assert check_plan(TINY_TEST, SYS, PLAN, WL) is None


def test_check_plan_rejects_bad_prefill_shape():
    plan = ServePlan(
        decode=DEC,
        prefill=InferenceStrategy(tensor_par=2, pipeline_par=9, data_par=1,
                                  batch=1),
    )
    # 2 * 9 procs != 4, but the shape error comes first on a matching pool
    sys18 = h100_system(20, hbm_gib=8.0)
    plan18 = ServePlan(
        decode=InferenceStrategy(tensor_par=1, pipeline_par=1, data_par=2,
                                 batch=1),
        prefill=InferenceStrategy(tensor_par=2, pipeline_par=9, data_par=1,
                                  batch=1),
    )
    assert check_plan(TINY_TEST, sys18, plan18, WL) is not None
    assert check_plan(TINY_TEST, SYS, plan, WL) is not None


def test_simulate_disagg_deterministic_and_complete():
    a = simulate_disagg(TINY_TEST, SYS, PLAN, WL)
    b = simulate_disagg(TINY_TEST, SYS, PLAN, WL)
    assert a == b
    assert a.completed == WL.num_requests
    assert a.kv_allocated_bytes == a.kv_freed_bytes
    assert a.ttft_p50 <= a.ttft_p95 <= a.ttft_p99


def test_disagg_ttft_includes_transfer():
    """Every disagg TTFT is at least the KV transfer for the shortest prompt."""
    stats = simulate_disagg(TINY_TEST, SYS, PLAN, WL)
    floor = kv_transfer_time(TINY_TEST, SYS, WL.prompt.min_len)
    assert min(stats.ttfts) >= floor


def test_simulate_plan_dispatches():
    colo = ServePlan(
        decode=InferenceStrategy(tensor_par=2, pipeline_par=1, data_par=2,
                                 batch=1)
    )
    via_plan = simulate_plan(TINY_TEST, SYS, colo, WL)
    direct = simulate_serve(TINY_TEST, SYS, colo.decode, WL)
    assert via_plan == direct
    assert simulate_plan(TINY_TEST, SYS, PLAN, WL) == simulate_disagg(
        TINY_TEST, SYS, PLAN, WL
    )


def test_simulate_disagg_requires_prefill():
    with pytest.raises(ValueError):
        simulate_disagg(TINY_TEST, SYS, ServePlan(decode=DEC), WL)
