"""Smoke tests: every shipped example script runs end-to-end.

The slower studies (budget, TCO, cliffs) are exercised with reduced scope via
environment-independent subprocess runs of the fast examples, plus import
checks for all of them — a broken import or API drift in any example fails
here.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)
FAST = {"quickstart.py", "pipeline_visualizer.py", "custom_specs.py",
        "inference_serving.py", "hardware_sensitivity.py"}


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_compiles_and_has_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # import side effects only
    assert hasattr(module, "main"), f"{path.name} must define main()"
    assert module.__doc__, f"{path.name} must have a module docstring"


@pytest.mark.parametrize(
    "path", [p for p in EXAMPLES if p.name in FAST], ids=lambda p: p.stem
)
def test_fast_example_runs(path):
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{path.name} produced no output"
