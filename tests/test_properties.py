"""Property-based tests (hypothesis) on the core invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import calculate
from repro.execution import ExecutionStrategy, divisors, factorizations
from repro.hardware import EfficiencyCurve, Network, a100_system
from repro.llm import LLMConfig, build_block
from repro.llm.layers import Engine
from repro.simulator import PipelineParams, simulate
from repro.units import GB

# A big-memory system so property sweeps exercise timing, not capacity.
BIG = a100_system(64, hbm_gib=1_000_000)


small_shapes = st.sampled_from(
    [
        (512, 8, 256, 8),
        (1024, 16, 512, 12),
        (2048, 16, 1024, 16),
        (1536, 12, 768, 6),
        (4096, 32, 2048, 24),
    ]
)


def make_llm(shape) -> LLMConfig:
    h, a, s, L = shape
    return LLMConfig(name=f"prop-{h}-{a}", hidden=h, attn_heads=a, seq_size=s,
                     num_blocks=L)


@given(shape=small_shapes, b=st.integers(1, 8), t=st.sampled_from([1, 2, 4]))
@settings(max_examples=40, deadline=None)
def test_gemm_flops_conserved_under_tp(shape, b, t):
    """Sharding never changes the total math: sum of shards == unsharded."""
    llm = make_llm(shape)
    base = build_block(llm, microbatch=b, tensor_par=1)
    shard = build_block(llm, microbatch=b, tensor_par=t)
    f0 = sum(l.flops_fw for l in base.layers if l.engine is Engine.MATRIX)
    f1 = sum(l.flops_fw for l in shard.layers if l.engine is Engine.MATRIX)
    assert f1 * t == pytest.approx(f0, rel=1e-9)


@given(shape=small_shapes, b=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_stash_monotone_in_recompute_aggressiveness(shape, b):
    llm = make_llm(shape)
    block = build_block(llm, microbatch=b, tensor_par=1)
    none = block.stash_bytes("none")
    attn = block.stash_bytes("attn_only")
    full = block.stash_bytes("full")
    assert none >= attn >= full > 0


@given(shape=small_shapes, b=st.integers(1, 4), t=st.sampled_from([2, 4]))
@settings(max_examples=30, deadline=None)
def test_stash_monotone_in_tensor_par_with_seq_par(shape, b, t):
    llm = make_llm(shape)
    lo = build_block(llm, microbatch=b, tensor_par=1)
    hi = build_block(llm, microbatch=b, tensor_par=t, seq_par=True)
    assert hi.stash_bytes("none") < lo.stash_bytes("none")


@given(
    nbytes=st.floats(1e3, 1e12),
    group=st.integers(2, 512),
)
@settings(max_examples=60, deadline=None)
def test_collective_decomposition_identity(nbytes, group):
    """RS + AG always equals AR on a ring."""
    net = Network(name="n", size=512, bandwidth=100 * GB, latency=0.0)
    ar = net.collective_time("all_reduce", nbytes, group)
    rs = net.collective_time("reduce_scatter", nbytes, group)
    ag = net.collective_time("all_gather", nbytes, group)
    assert rs + ag == pytest.approx(ar, rel=1e-9)


@given(points=st.lists(
    st.tuples(st.floats(1.0, 1e15), st.floats(0.01, 1.0)),
    min_size=1, max_size=6,
))
@settings(max_examples=60, deadline=None)
def test_efficiency_curve_bounded(points):
    pts = sorted(set((f, e) for f, e in points))
    # Deduplicate flops values (curve requires strictly usable ordering).
    seen, uniq = set(), []
    for f, e in pts:
        if f not in seen:
            seen.add(f)
            uniq.append((f, e))
    curve = EfficiencyCurve(points=tuple(uniq))
    los = min(e for _, e in uniq)
    his = max(e for _, e in uniq)
    for x in (0.5, 1.0, 1e3, 1e9, 1e18):
        val = curve(x)
        assert los - 1e-12 <= val <= his + 1e-12


@given(n=st.integers(1, 512))
@settings(max_examples=50, deadline=None)
def test_factorizations_multiply_back(n):
    for t, p, d in factorizations(n):
        assert t * p * d == n


@given(n=st.integers(1, 10_000))
@settings(max_examples=50, deadline=None)
def test_divisors_divide(n):
    ds = divisors(n)
    assert all(n % d == 0 for d in ds)
    assert ds[0] == 1 and ds[-1] == n
    assert ds == sorted(set(ds))


@given(
    t=st.sampled_from([1, 2, 4, 8]),
    mb=st.sampled_from([1, 2, 4]),
    recompute=st.sampled_from(["none", "attn_only", "full"]),
)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_model_outputs_always_consistent(t, mb, recompute):
    """Any feasible run: non-negative components, exposed <= total, MFU in (0,1]."""
    llm = LLMConfig(name="prop-run", hidden=1024, attn_heads=8, seq_size=512,
                    num_blocks=8)
    p = 2
    d = 64 // (t * p)
    if (64 // d) % mb:
        return  # microbatch must divide the local batch
    strat = ExecutionStrategy(
        tensor_par=t, pipeline_par=p, data_par=d, batch=64, microbatch=mb,
        recompute=recompute,
    )
    res = calculate(llm, BIG, strat)
    assert res.feasible
    tb = res.time
    for _, val in tb.stacked():
        assert val >= 0
    assert tb.tp_comm_exposed <= tb.tp_comm_total + 1e-12
    assert tb.dp_comm_exposed <= tb.dp_comm_total + 1e-12
    assert 0 < res.mfu <= 1.0
    assert res.mem1.total > 0


@given(
    p=st.integers(1, 6),
    M=st.integers(1, 12),
    v=st.integers(1, 3),
)
@settings(max_examples=25, deadline=None)
def test_simulator_work_conservation(p, M, v):
    """The schedule never invents or loses work."""
    params = PipelineParams(num_stages=p, num_microbatches=M, interleaving=v,
                            fw_time=1.0, bw_time=2.0)
    stats = simulate(params)
    per_device = M * v * (1.0 + 2.0)
    assert stats.busy_time == pytest.approx(per_device)
    assert stats.makespan >= per_device - 1e-9


@given(batch=st.sampled_from([32, 64, 128]))
@settings(max_examples=10, deadline=None)
def test_sample_rate_scales_with_batch_definition(batch):
    llm = LLMConfig(name="prop-b", hidden=1024, attn_heads=8, seq_size=512,
                    num_blocks=8)
    strat = ExecutionStrategy(tensor_par=8, pipeline_par=2, data_par=4,
                              batch=batch, microbatch=1)
    res = calculate(llm, BIG, strat)
    assert res.sample_rate == pytest.approx(batch / res.batch_time)
