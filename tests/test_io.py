"""JSON spec round-trip tests."""

import pytest

from repro.execution import ExecutionStrategy
from repro.hardware import a100_system, ddr5_offload, h100_system
from repro.io import (
    load_llm,
    load_strategy,
    load_system,
    save_llm,
    save_strategy,
    save_system,
    system_from_dict,
    system_to_dict,
)
from repro.llm import GPT3_175B


def test_llm_roundtrip(tmp_path):
    path = tmp_path / "llm.json"
    save_llm(GPT3_175B, path)
    assert load_llm(path) == GPT3_175B


def test_system_roundtrip(tmp_path):
    sys_ = a100_system(4096)
    path = tmp_path / "sys.json"
    save_system(sys_, path)
    again = load_system(path)
    assert again == sys_


def test_system_roundtrip_with_offload(tmp_path):
    sys_ = h100_system(512, hbm_gib=40, offload=ddr5_offload(512))
    path = tmp_path / "sys.json"
    save_system(sys_, path)
    again = load_system(path)
    assert again == sys_
    assert again.mem2 is not None


def test_system_dict_preserves_efficiency_curves():
    sys_ = a100_system(64)
    again = system_from_dict(system_to_dict(sys_))
    proc = again.processor
    assert proc.matrix_efficiency(1e9) == pytest.approx(
        sys_.processor.matrix_efficiency(1e9)
    )


def test_strategy_roundtrip(tmp_path):
    strat = ExecutionStrategy(
        tensor_par=8,
        pipeline_par=16,
        data_par=32,
        batch=4096,
        microbatch=2,
        pp_interleaving=8,
        seq_par=True,
        tp_redo_sp=True,
        pp_rs_ag=True,
        tp_overlap="ring",
        dp_overlap=True,
        optimizer_sharding=True,
        recompute="attn_only",
        fused_activations=True,
        weight_offload=True,
        activation_offload=True,
        optimizer_offload=True,
    )
    path = tmp_path / "exec.json"
    save_strategy(strat, path)
    assert load_strategy(path) == strat


def test_saved_files_are_json(tmp_path):
    import json

    path = tmp_path / "llm.json"
    save_llm(GPT3_175B, path)
    data = json.loads(path.read_text())
    assert data["hidden"] == 12288
