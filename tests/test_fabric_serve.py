"""Fabric sharding of serve-search: chunked merge == serial, keys isolate."""

from repro.fabric import (
    TopKMerge,
    enumerate_serve_space,
    evaluate_serve_chunk,
    plan_chunks,
    serve_fabric_run_key,
    serve_options_from_dict,
    serve_options_to_dict,
)
from repro.hardware.system import h100_system
from repro.llm.config import TINY_TEST
from repro.serving import (
    LengthDist,
    ServePlan,
    ServeSearchOptions,
    ServeWorkload,
    SLOSpec,
    serve_search,
)

SYS = h100_system(4, hbm_gib=8.0)
WL = ServeWorkload(
    arrival_rate=20.0, prompt=LengthDist.uniform(64, 128),
    output=LengthDist.uniform(16, 32), num_requests=40, seed=1,
)
SLO = SLOSpec(ttft_p95=9e-5, tpot_p95=4e-5)
OPTS = ServeSearchOptions()
TOP_K = 5


def _merge_chunks(step):
    plans, total = enumerate_serve_space(TINY_TEST, SYS, OPTS)
    merge = TopKMerge(TOP_K)
    payloads = []
    for spec in plan_chunks(total, workers=1, step=step):
        payload = evaluate_serve_chunk(
            TINY_TEST, SYS, spec.start, spec.stop, TOP_K,
            plans=plans, workload=WL, slo=SLO, chunk_index=spec.index,
        )
        payloads.append(payload)
        for goodput, gidx, plan_dict in payload["top"]:
            merge.add(goodput, gidx, plan_dict)
    return merge, payloads


def test_chunked_merge_matches_serial_search():
    serial = serve_search(TINY_TEST, SYS, WL, SLO, options=OPTS, top_k=TOP_K)
    for step in (1, 3, 7, 100):
        merge, payloads = _merge_chunks(step)
        entries = merge.entries()
        assert len(entries) == len(serial.top)
        for (goodput, _gidx, plan_dict), (plan, stats) in zip(
            entries, serial.top
        ):
            assert goodput == stats.goodput_rps
            assert ServePlan.from_dict(plan_dict) == plan
        # Chunk counters partition the serial run's totals exactly.
        assert sum(p["n"] for p in payloads) == serial.num_candidates
        assert sum(p["simulated"] for p in payloads) == serial.num_simulated
        assert sum(p["pruned"] for p in payloads) == serial.num_pruned
        assert sum(p["infeasible"] for p in payloads) == serial.num_infeasible
        assert sum(p["violated"] for p in payloads) == serial.num_violated


def test_chunk_payload_is_wire_shaped():
    plans, total = enumerate_serve_space(TINY_TEST, SYS, OPTS)
    payload = evaluate_serve_chunk(
        TINY_TEST, SYS, 0, min(4, total), TOP_K,
        plans=plans, workload=WL, slo=SLO, trace_id="tid-1",
    )
    import json

    json.dumps(payload)  # JSON-safe end to end
    assert payload["snapshot"] is not None
    assert any("serve-chunk" in e.get("name", "") for e in payload["events"])
    uninstrumented = evaluate_serve_chunk(
        TINY_TEST, SYS, 0, min(4, total), TOP_K,
        plans=plans, workload=WL, slo=SLO, instrument=False,
    )
    assert uninstrumented["snapshot"] is None
    assert uninstrumented["events"] is None
    assert uninstrumented["top"] == payload["top"]


def test_serve_fabric_key_isolates():
    base = serve_fabric_run_key(TINY_TEST, SYS, OPTS, WL, SLO, top_k=TOP_K)
    assert base == serve_fabric_run_key(TINY_TEST, SYS, OPTS, WL, SLO,
                                        top_k=TOP_K)
    variants = {
        base,
        serve_fabric_run_key(TINY_TEST, SYS, OPTS, WL, None, top_k=TOP_K),
        serve_fabric_run_key(TINY_TEST, SYS, OPTS,
                             ServeWorkload(arrival_rate=21.0), SLO,
                             top_k=TOP_K),
        serve_fabric_run_key(TINY_TEST, SYS, OPTS, WL, SLO, top_k=TOP_K + 1),
        serve_fabric_run_key(TINY_TEST, SYS,
                             ServeSearchOptions(disagg=False), WL, SLO,
                             top_k=TOP_K),
    }
    assert len(variants) == 5


def test_serve_options_json_roundtrip():
    opts = ServeSearchOptions(max_tensor_par=8, disagg=True,
                              splits=(0.125, 0.5), max_batch=16)
    import json

    wire = json.loads(json.dumps(serve_options_to_dict(opts)))
    rebuilt = serve_options_from_dict(wire)
    assert rebuilt == opts
    assert serve_fabric_run_key(
        TINY_TEST, SYS, rebuilt, WL, SLO, top_k=TOP_K
    ) == serve_fabric_run_key(TINY_TEST, SYS, opts, WL, SLO, top_k=TOP_K)
