"""Golden regression tests: pin the key numeric outputs of the calibrated model.

These freeze the validated operating points (Table 2, Fig. 3) so future
refactors cannot silently move the numbers EXPERIMENTS.md documents.  If a
deliberate model change shifts them, update the constants here *and* the
paper-vs-ours tables in EXPERIMENTS.md together.
"""

import pytest

from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import get_preset

# (llm, gpus, t, p, d, batch, microbatch, seqsel) -> frozen batch time
GOLDEN_BATCH_TIMES = {
    ("megatron-22b", 8, 8, 1, 1, 4, 4, False): 1.40,
    ("gpt3-175b", 64, 8, 8, 1, 64, 1, False): 18.07,
    ("turing-530b", 280, 8, 35, 1, 280, 1, False): 48.60,
    ("megatron-1t", 512, 8, 64, 1, 512, 1, False): 89.36,
    ("megatron-22b", 8, 8, 1, 1, 4, 4, True): 1.00,
    ("gpt3-175b", 64, 8, 8, 1, 64, 1, True): 12.91,
    ("turing-530b", 280, 8, 35, 1, 280, 1, True): 35.16,
    ("megatron-1t", 512, 8, 64, 1, 512, 1, True): 65.09,
}


def _run(name, n, t, p, d, batch, mb, seqsel):
    llm = get_preset(name)
    kw = (
        dict(recompute="attn_only", seq_par=True, tp_redo_sp=True)
        if seqsel
        else dict(recompute="full")
    )
    return calculate(
        llm,
        a100_system(n),
        ExecutionStrategy(tensor_par=t, pipeline_par=p, data_par=d,
                          batch=batch, microbatch=mb, **kw),
    )


@pytest.mark.parametrize("key,expected", sorted(GOLDEN_BATCH_TIMES.items()))
def test_golden_batch_times(key, expected):
    res = _run(*key)
    assert res.feasible
    assert res.batch_time == pytest.approx(expected, rel=0.02), (
        f"{key}: model moved from the frozen value — if intentional, update "
        f"this table and EXPERIMENTS.md together"
    )


def test_golden_fig3_point():
    res = calculate(
        get_preset("gpt3-175b"),
        a100_system(4096),
        ExecutionStrategy(tensor_par=8, pipeline_par=64, data_par=8,
                          batch=4096, microbatch=1, recompute="full"),
    )
    assert res.feasible
    assert res.batch_time == pytest.approx(24.5, rel=0.03)
    assert res.mfu == pytest.approx(0.287, abs=0.02)
    assert res.mem1.total / 2**30 == pytest.approx(12.9, rel=0.05)


def test_golden_model_evaluation_is_fast():
    """The paper's speed claim: a full analysis in well under a millisecond."""
    import time

    llm = get_preset("megatron-1t")
    system = a100_system(4096)
    strat = ExecutionStrategy(tensor_par=8, pipeline_par=16, data_par=32,
                              batch=4096, microbatch=2, pp_interleaving=8,
                              recompute="attn_only", seq_par=True,
                              optimizer_sharding=True)
    calculate(llm, system, strat)  # warm the block-profile cache
    n = 200
    start = time.perf_counter()
    for _ in range(n):
        calculate(llm, system, strat)
    per_eval = (time.perf_counter() - start) / n
    assert per_eval < 1e-3, f"evaluation took {per_eval * 1e3:.2f} ms"
