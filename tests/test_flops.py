"""Roofline op-time tests (paper §2.2 processing model)."""

import pytest

from repro.core import op_time
from repro.core.flops import layer_bw_time, layer_fw_time
from repro.hardware import EfficiencyCurve, MemoryTier, Processor
from repro.llm.layers import Engine, Layer, Role
from repro.units import GiB, TB, TFLOPS

PROC = Processor(
    name="p",
    matrix_flops=100 * TFLOPS,
    vector_flops=10 * TFLOPS,
    matrix_efficiency=EfficiencyCurve.flat(1.0),
    vector_efficiency=EfficiencyCurve.flat(1.0),
)
MEM = MemoryTier(name="m", capacity=80 * GiB, bandwidth=1 * TB, efficiency=1.0)


def test_compute_bound_op():
    # 1e14 flops at 100 TFLOP/s = 1 s; 1e9 bytes at 1 TB/s = 1 ms.
    t = op_time(PROC, MEM, 1e14, 1e9, "matrix")
    assert t.total == pytest.approx(1.0)
    assert t.compute_bound


def test_memory_bound_op():
    t = op_time(PROC, MEM, 1e9, 1e12, "matrix")
    assert t.total == pytest.approx(1.0)
    assert not t.compute_bound


def test_max_semantics():
    t = op_time(PROC, MEM, 1e14, 1e12, "matrix")
    assert t.total == pytest.approx(max(t.compute, t.memory))


def test_vector_engine_selected():
    t = op_time(PROC, MEM, 1e13, 0.0, "vector")
    assert t.total == pytest.approx(1.0)  # 1e13 / 10 TFLOP/s


def test_layer_helpers_use_layer_fields():
    layer = Layer(
        name="l",
        engine=Engine.MATRIX,
        role=Role.GEMM,
        flops_fw=1e14,
        flops_bw=2e14,
        traffic_fw=1e9,
        traffic_bw=2e9,
    )
    assert layer_fw_time(PROC, MEM, layer).total == pytest.approx(1.0)
    assert layer_bw_time(PROC, MEM, layer).total == pytest.approx(2.0)


def test_zero_op_is_free():
    t = op_time(PROC, MEM, 0.0, 0.0, "matrix")
    assert t.total == 0.0
