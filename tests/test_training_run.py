"""Training-run planner tests, including the paper's intro-scale claims."""

import pytest

from repro.analysis import plan_training_run
from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import MEGATRON_1T, LLMConfig

SMALL = LLMConfig(name="plan-llm", hidden=2048, attn_heads=16, seq_size=1024,
                  num_blocks=8)


def small_plan(tokens=1e9, **kw):
    system = a100_system(8, hbm_gib=1_000_000)
    strat = ExecutionStrategy(
        tensor_par=8, pipeline_par=1, data_par=1, batch=16, microbatch=1, **kw
    )
    return plan_training_run(SMALL, system, strat, tokens=tokens)


def test_plan_basic_arithmetic():
    plan = small_plan(tokens=1e9)
    assert plan.batch_tokens == 16 * 1024
    assert plan.num_batches == -(-int(1e9) // (16 * 1024))
    assert plan.total_seconds == pytest.approx(plan.num_batches * plan.batch_time)
    assert plan.gpu_hours == pytest.approx(plan.total_seconds / 3600 * 8)
    assert plan.days == pytest.approx(plan.total_seconds / 86400)


def test_total_flops_follows_6nd_rule():
    plan = small_plan(tokens=1e9)
    assert plan.total_flops == pytest.approx(6 * SMALL.total_parameters * 1e9)


def test_cost_scales_with_rate():
    plan = small_plan()
    assert plan.cost(2.0) == pytest.approx(2 * plan.cost(1.0))
    assert plan.cost(0.0) == 0.0
    with pytest.raises(ValueError):
        plan.cost(-1.0)


def test_tokens_must_be_positive():
    with pytest.raises(ValueError, match="tokens"):
        small_plan(tokens=0)


def test_infeasible_configuration_raises():
    system = a100_system(8, hbm_gib=0.001)
    strat = ExecutionStrategy(tensor_par=8, pipeline_par=1, data_par=1, batch=16)
    with pytest.raises(ValueError, match="infeasible"):
        plan_training_run(SMALL, system, strat, tokens=1e9)


def test_precomputed_result_shortcut():
    system = a100_system(8, hbm_gib=1_000_000)
    strat = ExecutionStrategy(tensor_par=8, pipeline_par=1, data_par=1, batch=16)
    res = calculate(SMALL, system, strat)
    plan = plan_training_run(SMALL, system, strat, tokens=1e9, result=res)
    assert plan.batch_time == pytest.approx(res.batch_time)


def test_summary_text():
    text = small_plan().summary()
    assert "days" in text
    assert "zettaFLOP" in text
    assert "GPU-hour" in text


def test_paper_intro_megatron_1t_campaign():
    """The paper's motivating numbers: Megatron-1T over 450B tokens on 3,072
    A100s took 84 days, >1,000 zettaFLOP, ~700 GPU-years, >$6M at $1/hr."""
    system = a100_system(3072)
    strat = ExecutionStrategy(
        tensor_par=8,
        pipeline_par=64,
        data_par=6,
        batch=2160,  # Megatron-1T's published global batch size
        microbatch=1,
        recompute="full",
        optimizer_sharding=True,
    )
    plan = plan_training_run(MEGATRON_1T, system, strat, tokens=450e9)

    # >1,000 zettaFLOP of useful model compute (paper: "more than 1,000").
    assert plan.zetta_flops > 1000
    assert plan.zetta_flops < 4000
    # Wall-clock in the published ballpark (paper: 84 days).
    assert 50 < plan.days < 160
    # Roughly seven hundred GPU-years and several million dollars.
    assert 400 < plan.gpu_years < 1400
    assert 4e6 < plan.cost(1.0) < 12e6
