"""Timeline recording and Gantt rendering tests."""

import pytest

from repro.simulator import (
    PipelineParams,
    ScheduledItem,
    render_gantt,
    simulate,
    simulate_timeline,
)


def params(**kw):
    base = dict(num_stages=4, num_microbatches=4, interleaving=1,
                fw_time=1.0, bw_time=2.0)
    base.update(kw)
    return PipelineParams(**base)


def test_timeline_matches_simulation_makespan():
    p = params()
    tl = simulate_timeline(p)
    stats = simulate(p)
    assert max(it.finish for it in tl.items) == pytest.approx(stats.makespan)


def test_every_item_recorded_once():
    p = params(interleaving=2)
    tl = simulate_timeline(p)
    expected = p.num_stages * p.interleaving * p.num_microbatches * 2
    assert len(tl.items) == expected
    keys = {(it.microbatch, it.vstage, it.phase) for it in tl.items}
    assert len(keys) == expected


def test_items_live_on_their_vstage_device():
    tl = simulate_timeline(params(interleaving=2))
    for it in tl.items:
        assert it.device == it.vstage % 4


def test_device_items_sorted_and_non_overlapping():
    tl = simulate_timeline(params())
    for dev in range(4):
        items = tl.device_items(dev)
        assert items == sorted(items, key=lambda it: it.start)
        for a, b in zip(items, items[1:]):
            assert b.start >= a.finish - 1e-9


def test_chunk_of():
    tl = simulate_timeline(params(interleaving=2))
    assert tl.chunk_of(0) == 0
    assert tl.chunk_of(3) == 0
    assert tl.chunk_of(4) == 1
    assert tl.chunk_of(7) == 1


def test_durations_match_phase():
    tl = simulate_timeline(params())
    for it in tl.items:
        expect = 1.0 if it.phase == "f" else 2.0
        assert it.finish - it.start == pytest.approx(expect)


def test_scheduled_item_validation():
    with pytest.raises(ValueError, match="phase"):
        ScheduledItem(device=0, microbatch=0, vstage=0, phase="x",
                      start=0.0, finish=1.0)
    with pytest.raises(ValueError, match="finish"):
        ScheduledItem(device=0, microbatch=0, vstage=0, phase="f",
                      start=2.0, finish=1.0)


def test_render_gantt_shape():
    tl = simulate_timeline(params(num_microbatches=2))
    text = render_gantt(tl)
    lines = text.splitlines()
    assert len(lines) == 5  # 4 devices + legend
    assert lines[0].startswith("dev0 |")
    assert "legend" in lines[-1]
    assert "[0.0]" in text  # at least one backward slot rendered


def test_render_gantt_shows_interleaving_chunks():
    tl = simulate_timeline(params(interleaving=2, num_microbatches=2))
    text = render_gantt(tl)
    assert "1.0" in text  # chunk-1 slots appear
