"""The service's two-tier result cache (repro.service.cache)."""

import json

from repro.obs import MetricsRegistry
from repro.service.cache import (
    M_CACHE_EVICTIONS,
    M_CACHE_HIT_DISK,
    M_CACHE_HIT_MEMORY,
    M_CACHE_MISS,
    ResultCache,
)


def test_memory_hit_and_miss_counters():
    reg = MetricsRegistry()
    cache = ResultCache(capacity=4, metrics=reg)
    assert cache.get("k1") is None
    cache.put("k1", {"x": 1})
    assert cache.get("k1") == {"x": 1}
    assert reg.value(M_CACHE_MISS) == 1
    assert reg.value(M_CACHE_HIT_MEMORY) == 1


def test_lru_eviction_order():
    reg = MetricsRegistry()
    cache = ResultCache(capacity=3, metrics=reg)
    for k in ("a", "b", "c"):
        cache.put(k, k.upper())
    cache.get("a")  # refresh: b is now least-recently used
    cache.put("d", "D")
    assert cache.memory_keys() == ["c", "a", "d"]
    assert cache.get("b") is None  # evicted
    assert reg.value(M_CACHE_EVICTIONS) == 1


def test_eviction_is_bounded_under_churn():
    cache = ResultCache(capacity=2)
    for i in range(50):
        cache.put(f"k{i}", i)
    assert len(cache) == 2
    assert cache.memory_keys() == ["k48", "k49"]


def test_disk_tier_round_trip_after_restart(tmp_path):
    reg = MetricsRegistry()
    cache = ResultCache(capacity=8, cache_dir=tmp_path, metrics=reg)
    cache.put("deadbeef" * 8, {"sample_rate": 1.5, "feasible": True})

    # A "restarted server": a fresh cache over the same directory.
    reborn = ResultCache(capacity=8, cache_dir=tmp_path, metrics=reg)
    assert len(reborn) == 0
    value = reborn.get("deadbeef" * 8)
    assert value == {"sample_rate": 1.5, "feasible": True}
    assert reg.value(M_CACHE_HIT_DISK) == 1
    # The disk hit was promoted into the memory tier.
    assert reborn.tier("deadbeef" * 8) == "memory"


def test_disk_shards_by_key_prefix(tmp_path):
    cache = ResultCache(capacity=8, cache_dir=tmp_path)
    cache.put("aa11", 1)
    cache.put("aa22", 2)
    cache.put("bb33", 3)
    assert sorted(p.name for p in tmp_path.glob("*.jsonl")) == [
        "aa.jsonl",
        "bb.jsonl",
    ]
    lines = (tmp_path / "aa.jsonl").read_text().splitlines()
    assert [json.loads(line)["key"] for line in lines] == ["aa11", "aa22"]
    assert cache.disk_entries() == 3


def test_memory_eviction_does_not_lose_disk_entries(tmp_path):
    cache = ResultCache(capacity=1, cache_dir=tmp_path)
    cache.put("aa11", 1)
    cache.put("bb22", 2)  # evicts aa11 from memory
    assert cache.memory_keys() == ["bb22"]
    assert cache.get("aa11") == 1  # served from disk


def test_malformed_shard_lines_are_skipped(tmp_path):
    (tmp_path / "aa.jsonl").write_text(
        json.dumps({"key": "aa11", "value": 7}) + "\nnot json\n{\"no\": \"key\"}\n"
    )
    cache = ResultCache(capacity=4, cache_dir=tmp_path)
    assert cache.get("aa11") == 7
    assert cache.disk_entries() == 1


def test_tier_probe_moves_no_counters(tmp_path):
    reg = MetricsRegistry()
    cache = ResultCache(capacity=4, cache_dir=tmp_path, metrics=reg)
    cache.put("aa11", 1)
    assert cache.tier("aa11") == "memory"
    assert cache.tier("zz99") is None
    assert reg.value(M_CACHE_HIT_MEMORY) == 0
    assert reg.value(M_CACHE_MISS) == 0


def test_memory_only_cache_has_no_disk(tmp_path):
    cache = ResultCache(capacity=4)
    cache.put("aa11", 1)
    assert cache.disk_entries() == 0
    assert cache.tier("aa11") == "memory"


def test_loaded_shard_cache_is_bounded(tmp_path):
    cache = ResultCache(capacity=64, cache_dir=tmp_path, shard_cache_size=2)
    prefixes = ["aa", "bb", "cc", "dd", "ee"]
    for p in prefixes:
        cache.put(p + "11", p)
    assert len(cache._shards) <= 2
    cache.clear_memory()
    # Dropped shards reload on demand; the bound holds throughout.
    for p in prefixes:
        assert cache.get(p + "11") == p
        assert len(cache._shards) <= 2
    assert cache.disk_entries() == 5


def test_disk_entries_counts_without_loading_shards(tmp_path):
    cache = ResultCache(capacity=64, cache_dir=tmp_path)
    for p in ("aa", "bb", "cc"):
        cache.put(p + "11", p)
    # A fresh process introspecting the store (healthz) counts keys without
    # pulling whole shards into its shard cache.
    fresh = ResultCache(capacity=64, cache_dir=tmp_path)
    assert fresh.disk_entries() == 3
    assert len(fresh._shards) == 0


def test_put_appends_and_last_line_wins_on_reload(tmp_path):
    cache = ResultCache(capacity=4, cache_dir=tmp_path)
    cache.put("aa11", 1)
    cache.put("aa11", 2)
    lines = (tmp_path / "aa.jsonl").read_text().splitlines()
    assert len(lines) == 2  # appended, not rewritten
    reborn = ResultCache(capacity=4, cache_dir=tmp_path)
    assert reborn.get("aa11") == 2


def test_bloated_shard_is_compacted(tmp_path):
    from repro.service.cache import _COMPACT_MIN_LINES

    cache = ResultCache(capacity=4, cache_dir=tmp_path)
    n = _COMPACT_MIN_LINES + 6
    for i in range(n):
        cache.put("aa11", i)
    lines = (tmp_path / "aa.jsonl").read_text().splitlines()
    assert len(lines) < n  # superseded lines were dropped at least once
    reborn = ResultCache(capacity=4, cache_dir=tmp_path)
    assert reborn.get("aa11") == n - 1
