"""Bottleneck phase-diagram tests."""

import pytest

from repro.analysis import PhaseCell, dominant_component, phase_diagram
from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import LLMConfig
from repro.search import SearchOptions

LLM = LLMConfig(name="pd-llm", hidden=2048, attn_heads=16, seq_size=1024,
                num_blocks=8)
BIG = a100_system(8, hbm_gib=1_000_000)
OPTS = SearchOptions(
    recompute=("full",),
    seq_par_modes=((False, False, False),),
    tp_overlap=("none",),
    dp_overlap=(False,),
    optimizer_sharding=(True,),
    fused_activations=(False,),
    max_microbatch=2,
)


def test_dominant_component_balanced_case():
    res = calculate(
        LLM, BIG,
        ExecutionStrategy(tensor_par=2, pipeline_par=2, data_par=2, batch=8,
                          recompute="none"),
    )
    assert dominant_component(res) == "compute"


def test_dominant_component_bubble_case():
    # One microbatch through a deep pipeline: nearly all bubble.
    res = calculate(
        LLM, BIG,
        ExecutionStrategy(tensor_par=1, pipeline_par=8, data_par=1, batch=1,
                          recompute="none"),
    )
    assert dominant_component(res) == "bubble"


def test_dominant_component_comm_case():
    from dataclasses import replace

    slow = replace(
        BIG,
        networks=(
            replace(BIG.networks[0], bandwidth=BIG.networks[0].bandwidth / 500),
            BIG.networks[1],
        ),
    )
    res = calculate(
        LLM, slow,
        ExecutionStrategy(tensor_par=8, pipeline_par=1, data_par=1, batch=8),
    )
    assert dominant_component(res) == "tp-comm"


def test_dominant_component_infeasible():
    res = calculate(
        LLM, BIG,
        ExecutionStrategy(tensor_par=2, pipeline_par=2, data_par=3, batch=9),
    )
    assert dominant_component(res) == "infeasible"


def test_phase_diagram_grid_shape():
    small = LLMConfig(name="pd-small", hidden=1024, attn_heads=8, seq_size=512,
                      num_blocks=4)
    rows = phase_diagram([small, LLM], lambda n: a100_system(n), [4, 8], 16,
                         OPTS)
    assert len(rows) == 2
    assert all(len(r) == 2 for r in rows)
    for row in rows:
        for cell in row:
            assert isinstance(cell, PhaseCell)
            assert cell.label != ""
            if cell.label != "infeasible":
                assert 0 < cell.share <= 1
                assert cell.mfu > 0


def test_phase_cell_validation():
    with pytest.raises(ValueError):
        PhaseCell(llm_name="x", num_procs=8, label="compute", share=1.5,
                  mfu=0.5)
