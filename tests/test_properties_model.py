"""Second property-test suite: invariants of the full model and searches."""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.analysis.pareto import Objective, pareto_front
from repro.core import calculate
from repro.execution import ExecutionStrategy
from repro.hardware import Network, a100_system, ddr5_offload
from repro.hardware.collectives import best_time, ring_time, tree_time
from repro.inference import InferenceStrategy, calculate_inference, kv_cache_bytes
from repro.llm import LLMConfig
from repro.units import GB

BIG = a100_system(32, hbm_gib=1_000_000)
LLM = LLMConfig(name="prop2", hidden=2048, attn_heads=16, seq_size=512,
                num_blocks=8)


def feasible_strategy(t, p, mb, rc):
    d = 32 // (t * p)
    if d < 1 or 32 % (t * p):
        return None
    batch = 32
    if batch % d or (batch // d) % mb:
        return None
    return ExecutionStrategy(
        tensor_par=t, pipeline_par=p, data_par=d, batch=batch, microbatch=mb,
        recompute=rc,
    )


@given(
    t=st.sampled_from([1, 2, 4, 8]),
    p=st.sampled_from([1, 2, 4]),
    mb=st.sampled_from([1, 2, 4]),
    rc=st.sampled_from(["none", "attn_only", "full"]),
)
@settings(max_examples=40, deadline=None)
def test_batch_time_scales_superlinearly_never_sublinearly_with_model_depth(
    t, p, mb, rc
):
    """Doubling the block count at least doubles batch time (same strategy)."""
    strat = feasible_strategy(t, p, mb, rc)
    assume(strat is not None)
    deep = LLMConfig(name="deep", hidden=2048, attn_heads=16, seq_size=512,
                     num_blocks=16)
    shallow_res = calculate(LLM, BIG, strat)
    deep_res = calculate(deep, BIG, strat)
    assume(shallow_res.feasible and deep_res.feasible)
    assert deep_res.batch_time >= 1.9 * shallow_res.batch_time * (
        1 - 0.15
    )  # allowance for fixed optimizer/bubble terms


@given(
    t=st.sampled_from([1, 2, 4, 8]),
    p=st.sampled_from([1, 2, 4]),
    mb=st.sampled_from([1, 2]),
)
@settings(max_examples=30, deadline=None)
def test_recompute_never_faster(t, p, mb):
    strat = feasible_strategy(t, p, mb, "none")
    assume(strat is not None)
    none = calculate(LLM, BIG, strat)
    full = calculate(LLM, BIG, strat.evolve(recompute="full"))
    assume(none.feasible and full.feasible)
    assert full.batch_time >= none.batch_time - 1e-12


@given(
    t=st.sampled_from([1, 2, 4, 8]),
    p=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=25, deadline=None)
def test_mfu_and_rate_are_consistent(t, p):
    strat = feasible_strategy(t, p, 1, "full")
    assume(strat is not None)
    res = calculate(LLM, BIG, strat)
    assume(res.feasible)
    # Sample rate and MFU are two views of the same time: both positive,
    # MFU bounded by 1.
    assert res.sample_rate > 0
    assert 0 < res.mfu <= 1.0


@given(
    nbytes=st.floats(1e3, 1e11),
    group=st.integers(2, 1024),
)
@settings(max_examples=60, deadline=None)
def test_best_collective_never_worse_than_any_algorithm(nbytes, group):
    net = Network(name="n", size=1024, bandwidth=100 * GB, latency=2e-6)
    best = best_time(net, "all_reduce", nbytes, group)
    assert best.time <= ring_time(net, "all_reduce", nbytes, group) + 1e-15
    assert best.time <= tree_time(net, "all_reduce", nbytes, group) + 1e-15


@given(
    batch=st.integers(1, 16),
    context=st.integers(1, 4096),
    t=st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=40, deadline=None)
def test_kv_cache_linear_in_batch_and_context(batch, context, t):
    base = kv_cache_bytes(LLM, 1, 1, t)
    assert kv_cache_bytes(LLM, batch, context, t) == pytest.approx(
        base * batch * context
    )


@given(
    batch=st.sampled_from([1, 2, 4, 8]),
    gen=st.sampled_from([0, 16, 128]),
)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_inference_latency_components_consistent(batch, gen):
    strat = InferenceStrategy(tensor_par=8, pipeline_par=1, data_par=1,
                              batch=batch)
    res = calculate_inference(LLM, a100_system(8, hbm_gib=1_000_000), strat,
                              prompt_len=256, generate_len=gen)
    assert res.feasible
    assert res.generate_time == pytest.approx(gen * res.decode_step_time)
    assert res.request_latency >= res.prefill_time


@given(
    points=st.lists(
        st.tuples(st.floats(0.1, 100), st.floats(0.1, 100)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_pareto_front_is_mutually_nondominated(points):
    cands = [{"perf": p, "cost": c} for p, c in points]
    objs = (
        Objective("perf", key=lambda x: x["perf"], maximize=True),
        Objective("cost", key=lambda x: x["cost"], maximize=False),
    )
    front = pareto_front(cands, objs)
    assert front  # never empty for non-empty input
    from repro.analysis.pareto import dominates

    for a in front:
        for b in front:
            if a is not b:
                assert not dominates(a, b, objs) or not dominates(b, a, objs)
    # Every input is dominated by or present in the front.
    for cand in cands:
        in_front = any(cand is f for f in front)
        if not in_front:
            assert any(dominates(f, cand, objs) for f in front)


@given(
    cap_gib=st.sampled_from([1, 4, 16, 64]),
    t=st.sampled_from([2, 4, 8]),
)
@settings(max_examples=20, deadline=None)
def test_offload_never_increases_tier1_usage(cap_gib, t):
    sys_off = a100_system(8, hbm_gib=1_000_000, offload=ddr5_offload(100_000))
    base = dict(tensor_par=t, pipeline_par=1, data_par=8 // t, batch=8,
                microbatch=1, recompute="full", optimizer_sharding=True)
    resident = calculate(LLM, sys_off, ExecutionStrategy(**base))
    offloaded = calculate(
        LLM, sys_off,
        ExecutionStrategy(**base, weight_offload=True, activation_offload=True,
                          optimizer_offload=True),
    )
    assume(resident.feasible and offloaded.feasible)
    assert offloaded.mem1.total <= resident.mem1.total + 1e-9


@given(
    experts=st.sampled_from([2, 4, 8, 16]),
    k=st.sampled_from([1, 2]),
    cap=st.sampled_from([1.0, 1.25, 2.0]),
)
@settings(max_examples=25, deadline=None)
def test_moe_invariants(experts, k, cap):
    """MoE never beats its own dense backbone, and deltas are non-negative."""
    from repro.moe import MoEConfig, calculate_moe

    assume(k <= experts)
    cfg = MoEConfig(base=LLM, num_experts=experts, experts_per_token=k,
                    capacity_factor=cap)
    strat = ExecutionStrategy(tensor_par=2, pipeline_par=2, data_par=8,
                              batch=32, microbatch=1,
                              optimizer_sharding=True)
    res = calculate_moe(cfg, BIG, strat)
    assume(res.feasible)
    assert res.batch_time >= res.dense.batch_time - 1e-12
    assert res.moe_compute_time >= 0
    assert res.all_to_all_time >= 0
    assert res.expert_memory >= 0
    assert res.mem_total >= res.dense.mem1.total
    assert res.sample_rate == pytest.approx(32 / res.batch_time)


@given(
    rate=st.sampled_from([0.5, 2.0, 8.0]),
    seed=st.integers(0, 3),
)
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_serving_sim_conservation(rate, seed):
    """The queueing simulator conserves requests and keeps latency above
    the unloaded floor."""
    from repro.hardware import a100_system
    from repro.inference import (
        InferenceStrategy,
        ServingWorkload,
        calculate_inference,
        simulate_serving,
    )

    system = a100_system(8)
    strat = InferenceStrategy(tensor_par=8, pipeline_par=1, batch=1)
    wl = ServingWorkload(arrival_rate=rate, prompt_len=256, generate_len=32,
                         num_requests=30, seed=seed)
    stats = simulate_serving(LLM, system, strat, wl)
    assert stats.completed == 30
    single = calculate_inference(LLM, system, strat, prompt_len=256,
                                 generate_len=32)
    # No request can finish faster than an unloaded request.
    assert stats.mean_latency >= 0.9 * single.request_latency
    assert stats.p95_latency >= stats.mean_latency
