"""Strategy-to-simulator bridge tests."""

import pytest

from repro.execution import ExecutionStrategy
from repro.hardware import a100_system
from repro.llm import LLMConfig
from repro.simulator import simulate_strategy, strategy_pipeline_params

LLM = LLMConfig(name="br-llm", hidden=2048, attn_heads=16, seq_size=1024,
                num_blocks=16)
SYS = a100_system(8, hbm_gib=1_000_000)


def strat(**kw):
    base = dict(tensor_par=2, pipeline_par=4, data_par=1, batch=8,
                microbatch=1, pp_interleaving=2, recompute="full")
    base.update(kw)
    return ExecutionStrategy(**base)


def test_params_reflect_strategy_shape():
    params = strategy_pipeline_params(LLM, SYS, strat())
    assert params.num_stages == 4
    assert params.interleaving == 2
    assert params.num_microbatches == 8
    assert params.fw_time > 0
    assert params.bw_time > params.fw_time  # bw + recompute


def test_params_p2p_zero_without_pipeline():
    params = strategy_pipeline_params(
        LLM, SYS, strat(pipeline_par=1, data_par=4, pp_interleaving=1)
    )
    assert params.p2p_time == 0.0
    assert params.num_stages == 1


def test_invalid_strategy_raises():
    with pytest.raises(ValueError):
        strategy_pipeline_params(LLM, SYS, strat(data_par=3))


def test_simulated_schedule_consistent_with_closed_form():
    cmp = simulate_strategy(LLM, SYS, strat())
    assert cmp.simulated_bubble >= cmp.analytical_bubble - 1e-9
    assert cmp.bubble_gap < 1.0  # within 2x of the lower bound
    # All work items appear in the timeline.
    expected = 4 * 2 * 8 * 2
    assert len(cmp.timeline.items) == expected


def test_non_interleaved_bubble_exact():
    cmp = simulate_strategy(LLM, SYS, strat(pp_interleaving=1))
    assert cmp.simulated_bubble == pytest.approx(cmp.analytical_bubble, rel=1e-6)
    assert cmp.bubble_gap == pytest.approx(0.0, abs=1e-6)


def test_recompute_lengthens_backward_chunks():
    with_rc = strategy_pipeline_params(LLM, SYS, strat(recompute="full"))
    without = strategy_pipeline_params(LLM, SYS, strat(recompute="none"))
    assert with_rc.bw_time > without.bw_time
    assert with_rc.fw_time == pytest.approx(without.fw_time)
