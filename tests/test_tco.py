"""TCO-model tests (paper §6's "analyze total cost of ownership" directive)."""

import pytest

from repro.search.cost import BudgetEntry, SystemDesign
from repro.search.tco import HOURS_PER_YEAR, PowerModel, tco_report


def entry(**kw):
    base = dict(
        design=SystemDesign(80, 0),
        llm_name="llm",
        max_gpus=4096,
        used_gpus=4096,
        sample_rate=1000.0,
        mfu=0.5,
        cost=4096 * 30_000.0,
    )
    base.update(kw)
    return BudgetEntry(**base)


def test_watts_include_ddr_and_pue():
    pm = PowerModel(gpu_watts=700, ddr_watts_per_gib=0.4, infra_watts=300,
                    pue=1.3, utilization=1.0)
    no_ddr = pm.watts_per_gpu(SystemDesign(80, 0))
    with_ddr = pm.watts_per_gpu(SystemDesign(80, 512))
    assert no_ddr == pytest.approx((700 + 300) * 1.3)
    assert with_ddr - no_ddr == pytest.approx(512 * 0.4 * 1.3)


def test_annual_energy_cost():
    pm = PowerModel(gpu_watts=1000, infra_watts=0, pue=1.0,
                    dollars_per_kwh=0.10, utilization=1.0)
    # 1 kW * 8766 h * $0.10 = $876.6 per GPU-year.
    assert pm.annual_energy_cost(SystemDesign(80, 0), 1) == pytest.approx(876.6)
    assert pm.annual_energy_cost(SystemDesign(80, 0), 100) == pytest.approx(87_660)


def test_power_model_validation():
    with pytest.raises(ValueError):
        PowerModel(gpu_watts=0)
    with pytest.raises(ValueError):
        PowerModel(pue=0.9)
    with pytest.raises(ValueError):
        PowerModel(utilization=0.0)
    with pytest.raises(ValueError):
        PowerModel(dollars_per_kwh=-1)
    pm = PowerModel()
    with pytest.raises(ValueError):
        pm.annual_energy_cost(SystemDesign(80, 0), -1)


def test_tco_total_cost_composition():
    report = tco_report(entry(), lifetime_years=4.0)
    assert report.capex == pytest.approx(4096 * 30_000.0)
    assert report.total_cost == pytest.approx(
        report.capex + 4 * report.annual_opex
    )
    assert report.annual_opex > 0


def test_samples_per_dollar():
    report = tco_report(entry(), lifetime_years=4.0)
    lifetime_samples = 1000.0 * 4 * HOURS_PER_YEAR * 3600
    assert report.samples_per_dollar == pytest.approx(
        lifetime_samples / report.total_cost
    )
    assert report.dollars_per_million_samples == pytest.approx(
        1e6 / report.samples_per_dollar
    )


def test_zero_rate_reports_infinite_cost_per_sample():
    report = tco_report(entry(sample_rate=0.0, used_gpus=0, cost=0.0))
    assert report.samples_per_dollar == 0.0
    assert report.dollars_per_million_samples == float("inf")


def test_lifetime_validation():
    with pytest.raises(ValueError):
        tco_report(entry(), lifetime_years=0.0)


def test_opex_can_flip_a_capex_ranking():
    """A cheaper-to-buy design can lose on TCO once power is counted — the
    §6 point that efficiency gains accumulate over the system's life."""
    slow_cheap = tco_report(
        entry(design=SystemDesign(20, 0), sample_rate=800.0,
              cost=4096 * 22_250.0),
        lifetime_years=6.0,
    )
    fast_dear = tco_report(
        entry(design=SystemDesign(20, 256), sample_rate=1100.0,
              cost=4096 * 24_750.0),
        lifetime_years=6.0,
    )
    assert slow_cheap.capex < fast_dear.capex
    assert fast_dear.samples_per_dollar > slow_cheap.samples_per_dollar


def test_longer_lifetime_amortizes_capex():
    short = tco_report(entry(), lifetime_years=1.0)
    long = tco_report(entry(), lifetime_years=8.0)
    assert long.samples_per_dollar > short.samples_per_dollar
